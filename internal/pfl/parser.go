package pfl

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a complete PFL program.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	lex   *lexer
	tok   token
	depth int // expression/block nesting guard
}

// maxDepth bounds recursive-descent nesting so pathological inputs
// (like kilobytes of open parentheses) fail with an error instead of
// exhausting the stack.
const maxDepth = 512

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return p.errorf("nesting too deep (max %d)", maxDepth)
	}
	return nil
}

func (p *parser) exit() { p.depth-- }

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("pfl: %s: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokKeyword || p.tok.text != kw {
		return p.errorf("expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expectOp(op string) error {
	if p.tok.kind != tokOp || p.tok.text != op {
		return p.errorf("expected %q, found %s", op, p.tok)
	}
	return p.advance()
}

func (p *parser) atOp(op string) bool {
	return p.tok.kind == tokOp && p.tok.text == op
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) parseIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", p.tok)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) parseProgram() (*Program, error) {
	if err := p.expectKeyword("program"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	prog := &Program{Name: name}
	for {
		switch {
		case p.atKeyword("param"):
			d, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, d)
		case p.atKeyword("scalar"):
			d, err := p.parseScalar()
			if err != nil {
				return nil, err
			}
			prog.Scalars = append(prog.Scalars, d)
		case p.atKeyword("array"):
			d, err := p.parseArray()
			if err != nil {
				return nil, err
			}
			prog.Arrays = append(prog.Arrays, d)
		case p.atKeyword("proc"):
			pr, err := p.parseProc()
			if err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, pr)
		case p.tok.kind == tokEOF:
			return prog, nil
		default:
			return nil, p.errorf("expected declaration, found %s", p.tok)
		}
	}
}

func (p *parser) parseParam() (*ParamDecl, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume 'param'
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ParamDecl{Pos: pos, Name: name, Value: e}, nil
}

func (p *parser) parseScalar() (*ScalarDecl, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume 'scalar'
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	d := &ScalarDecl{Pos: pos, Name: name}
	if p.atOp("=") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		neg := false
		if p.atOp("-") {
			neg = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tokNumber {
			return nil, p.errorf("expected numeric initializer for scalar %s", name)
		}
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("scalar %s: %v", name, err)
		}
		if neg {
			v = -v
		}
		d.Init = v
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) parseArray() (*ArrayDecl, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume 'array'
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	d := &ArrayDecl{Pos: pos, Name: name}
	for p.atOp("[") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, e)
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
	}
	if len(d.Dims) == 0 {
		return nil, p.errorf("array %s needs at least one dimension", name)
	}
	return d, nil
}

func (p *parser) parseProc() (*Proc, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume 'proc'
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	pr := &Proc{Pos: pos, Name: name}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for !p.atOp(")") {
		fpos := p.tok.pos
		fname, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		rank := 0
		for p.atOp("[") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			rank++
		}
		if rank == 0 {
			return nil, p.errorf("formal %s must be an array (use %s[]... )", fname, fname)
		}
		pr.Formals = append(pr.Formals, &Formal{Pos: fpos, Name: fname, Rank: rank})
		if p.atOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	pr.Body = body
	return pr, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.atOp("}") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unexpected end of input inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, p.advance() // consume '}'
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("doall"):
		return p.parseDoall()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("call"):
		return p.parseCall()
	case p.atKeyword("critical"):
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &CriticalStmt{Pos: pos, Body: body}, nil
	case p.atKeyword("ordered"):
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &OrderedStmt{Pos: pos, Body: body}, nil
	case p.tok.kind == tokIdent:
		return p.parseAssign()
	default:
		return nil, p.errorf("expected statement, found %s", p.tok)
	}
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	v, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if p.atKeyword("step") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Pos: pos, Var: v, Lo: lo, Hi: hi, Step: step, Body: body}, nil
}

func (p *parser) parseDoall() (Stmt, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	v, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &DoallStmt{Pos: pos, Var: v, Lo: lo, Hi: hi, Body: body}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.atKeyword("else") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *parser) parseCall() (Stmt, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	st := &CallStmt{Pos: pos, Name: name}
	for !p.atOp(")") {
		arg, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		st.Args = append(st.Args, arg)
		if p.atOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return st, p.advance() // consume ')'
}

func (p *parser) parseAssign() (Stmt, error) {
	pos := p.tok.pos
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *VarRef, *IndexRef:
	default:
		return nil, p.errorf("invalid assignment target")
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Pos: pos, LHS: lhs, RHS: rhs}, nil
}

// Expression grammar (precedence climbing, lowest first):
//
//	expr    = orExpr
//	orExpr  = andExpr { "||" andExpr }
//	andExpr = cmpExpr { "&&" cmpExpr }
//	cmpExpr = addExpr [ ("<"|"<="|">"|">="|"=="|"!=") addExpr ]
//	addExpr = mulExpr { ("+"|"-") mulExpr }
//	mulExpr = unary   { ("*"|"/"|"%") unary }
//	unary   = [ "-" | "!" ] primary
//	primary = number | ident [ "[" expr "]" ... ] | "(" expr ")"
func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(0) }

var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"<", "<=", ">", ">=", "==", "!="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && contains(precLevels[level], p.tok.text) {
		op := p.tok.text
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Pos: pos, Op: op, X: x, Y: y}
		if level == 2 {
			break // comparisons do not chain
		}
	}
	return x, nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	if p.atOp("-") || p.atOp("!") {
		op := p.tok.text
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: pos, Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.pos
	switch {
	case p.tok.kind == tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", text)
		}
		isInt := !strings.ContainsAny(text, ".eE")
		return &NumLit{Pos: pos, Val: v, IsInt: isInt}, nil
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atOp("(") {
			// intrinsic application
			if err := p.advance(); err != nil {
				return nil, err
			}
			ce := &CallExpr{Pos: pos, Name: name}
			for !p.atOp(")") {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ce.Args = append(ce.Args, arg)
				if p.atOp(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			return ce, p.advance() // consume ')'
		}
		if !p.atOp("[") {
			return &VarRef{Pos: pos, Name: name, RefID: -1}, nil
		}
		ref := &IndexRef{Pos: pos, Name: name, RefID: -1}
		for p.atOp("[") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			sub, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ref.Subs = append(ref.Subs, sub)
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
		}
		return ref, nil
	case p.atOp("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectOp(")")
	default:
		return nil, p.errorf("expected expression, found %s", p.tok)
	}
}
