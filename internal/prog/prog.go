// Package prog builds the executable program model from a checked PFL
// AST: evaluated parameters, array shapes, and a word-addressed memory
// layout shared by the compiler analyses and the execution-driven
// simulator.
//
// One PFL array element (a float64) occupies one machine word. Arrays are
// laid out row-major and aligned to a line boundary so that spatial
// locality and false sharing behave as they would in the paper's
// byte-addressable machine scaled to word granularity.
package prog

import (
	"fmt"

	"repro/internal/pfl"
	"repro/internal/symexpr"
)

// Word is a word address in the simulated shared memory.
type Word int64

// ArrayInfo describes one global array's shape and placement.
type ArrayInfo struct {
	Name    string
	Dims    []int64 // evaluated extents
	Strides []int64 // row-major word strides: Strides[d] = product of Dims[d+1:]
	Base    Word    // word address of element [0][0]...
	Size    int64   // total words
}

// SubscriptErr is the canonical out-of-range error for subscript i in
// dimension d (shared by Address and the simulator's lowered address
// computation, so both report identically).
func (a *ArrayInfo) SubscriptErr(d int, i int64) error {
	return fmt.Errorf("prog: array %s: subscript %d out of range [0,%d) in dim %d",
		a.Name, i, a.Dims[d], d)
}

// ScalarInfo describes one global scalar's placement.
type ScalarInfo struct {
	Name string
	Addr Word
	Init float64
}

// Prog is the compiled program model: the checked AST plus evaluated
// parameters and the memory layout.
type Prog struct {
	AST    *pfl.Program
	Info   *pfl.Info
	Params map[string]int64

	Arrays  map[string]*ArrayInfo
	Scalars map[string]*ScalarInfo
	// MemWords is the total extent of the data segment in words.
	MemWords int64
}

// Build evaluates parameters and lays out globals. align is the line
// alignment in words (pass the machine's line size; 0 means no alignment).
func Build(info *pfl.Info, align int64) (*Prog, error) {
	return BuildPadded(info, align, false)
}

// BuildPadded is Build with optional scalar padding: padScalars gives
// every scalar its own aligned line, eliminating false sharing between
// scalars at the cost of memory.
func BuildPadded(info *pfl.Info, align int64, padScalars bool) (*Prog, error) {
	p := &Prog{
		AST:     info.Prog,
		Info:    info,
		Params:  make(map[string]int64),
		Arrays:  make(map[string]*ArrayInfo),
		Scalars: make(map[string]*ScalarInfo),
	}
	for _, d := range info.Prog.Params {
		v, err := p.EvalParamExpr(d.Value)
		if err != nil {
			return nil, err
		}
		p.Params[d.Name] = v
	}
	if align <= 0 {
		align = 1
	}

	var next Word
	alignUp := func(w Word) Word {
		a := Word(align)
		return (w + a - 1) / a * a
	}

	// Scalars first: packed contiguously by default (they can false-share
	// a line, which is realistic), or one per line when padding.
	for _, d := range info.Prog.Scalars {
		if padScalars {
			next = alignUp(next)
		}
		p.Scalars[d.Name] = &ScalarInfo{Name: d.Name, Addr: next, Init: d.Init}
		next++
	}
	if padScalars && len(info.Prog.Scalars) > 0 {
		next = alignUp(next)
	}
	for _, d := range info.Prog.Arrays {
		next = alignUp(next)
		ai := &ArrayInfo{Name: d.Name, Base: next}
		size := int64(1)
		for _, dim := range d.Dims {
			v, err := p.EvalParamExpr(dim)
			if err != nil {
				return nil, err
			}
			if v <= 0 {
				return nil, fmt.Errorf("prog: array %s has non-positive dimension %d", d.Name, v)
			}
			ai.Dims = append(ai.Dims, v)
			size *= v
		}
		ai.Size = size
		ai.Strides = make([]int64, len(ai.Dims))
		stride := int64(1)
		for d := len(ai.Dims) - 1; d >= 0; d-- {
			ai.Strides[d] = stride
			stride *= ai.Dims[d]
		}
		p.Arrays[d.Name] = ai
		next += Word(size)
	}
	p.MemWords = int64(next)
	return p, nil
}

// EvalParamExpr evaluates a compile-time integer expression over params.
func (p *Prog) EvalParamExpr(e pfl.Expr) (int64, error) {
	switch ex := e.(type) {
	case *pfl.NumLit:
		if !ex.IsInt {
			return 0, fmt.Errorf("prog: %s: expected integer constant", ex.Pos)
		}
		return int64(ex.Val), nil
	case *pfl.VarRef:
		if v, ok := p.Params[ex.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("prog: %s: %q is not a param", ex.Pos, ex.Name)
	case *pfl.UnExpr:
		v, err := p.EvalParamExpr(ex.X)
		if err != nil {
			return 0, err
		}
		if ex.Op != "-" {
			return 0, fmt.Errorf("prog: %s: invalid constant op %q", ex.Pos, ex.Op)
		}
		return -v, nil
	case *pfl.BinExpr:
		x, err := p.EvalParamExpr(ex.X)
		if err != nil {
			return 0, err
		}
		y, err := p.EvalParamExpr(ex.Y)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, fmt.Errorf("prog: %s: division by zero", ex.Pos)
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, fmt.Errorf("prog: %s: modulo by zero", ex.Pos)
			}
			return x % y, nil
		default:
			return 0, fmt.Errorf("prog: %s: invalid constant op %q", ex.Pos, ex.Op)
		}
	default:
		return 0, fmt.Errorf("prog: %s: invalid constant expression", e.Position())
	}
}

// Address linearizes an element reference. Subscripts out of range are an
// error (the simulator treats them as a program bug).
func (p *Prog) Address(array *ArrayInfo, idx []int64) (Word, error) {
	if len(idx) != len(array.Dims) {
		return 0, fmt.Errorf("prog: array %s: got %d subscripts, want %d", array.Name, len(idx), len(array.Dims))
	}
	var lin int64
	for d, i := range idx {
		if i < 0 || i >= array.Dims[d] {
			return 0, array.SubscriptErr(d, i)
		}
		lin += i * array.Strides[d]
	}
	return array.Base + Word(lin), nil
}

// Affine converts an integer-valued PFL expression into a symbolic affine
// expression for analysis. Parameters are substituted with their constant
// values; loop variables stay symbolic; anything else (scalars, array
// elements, division, modulo) becomes Unknown. loopVars is the set of
// in-scope loop variables.
func (p *Prog) Affine(e pfl.Expr, loopVars map[string]bool) symexpr.Expr {
	switch ex := e.(type) {
	case *pfl.NumLit:
		if !ex.IsInt {
			return symexpr.Unknown()
		}
		return symexpr.Const(int64(ex.Val))
	case *pfl.VarRef:
		if v, ok := p.Params[ex.Name]; ok {
			return symexpr.Const(v)
		}
		if loopVars[ex.Name] {
			return symexpr.Var(ex.Name)
		}
		return symexpr.Unknown() // runtime scalar value
	case *pfl.UnExpr:
		if ex.Op == "-" {
			return p.Affine(ex.X, loopVars).Neg()
		}
		return symexpr.Unknown()
	case *pfl.BinExpr:
		x := p.Affine(ex.X, loopVars)
		y := p.Affine(ex.Y, loopVars)
		switch ex.Op {
		case "+":
			return x.Add(y)
		case "-":
			return x.Sub(y)
		case "*":
			return x.Mul(y)
		case "/", "%":
			// Constant folding only; symbolic division is non-affine.
			if cx, ok := x.IsConst(); ok {
				if cy, ok2 := y.IsConst(); ok2 && cy != 0 {
					if ex.Op == "/" {
						return symexpr.Const(cx / cy)
					}
					return symexpr.Const(cx % cy)
				}
			}
			return symexpr.Unknown()
		default:
			return symexpr.Unknown()
		}
	case *pfl.CallExpr:
		return symexpr.Unknown() // intrinsic results are non-affine
	default:
		return symexpr.Unknown()
	}
}

// ArrayOrScalar resolves a name (within a procedure, so formals resolve to
// nothing here) to a global array or scalar. The simulator maintains its
// own formal->actual binding; this helper serves analyses over globals.
func (p *Prog) ArrayOrScalar(name string) (arr *ArrayInfo, sc *ScalarInfo) {
	return p.Arrays[name], p.Scalars[name]
}
