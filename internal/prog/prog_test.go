package prog

import (
	"strings"
	"testing"

	"repro/internal/pfl"
	"repro/internal/symexpr"
)

func build(t *testing.T, src string, align int64) *Prog {
	t.Helper()
	ast, err := pfl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := pfl.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(info, align)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const src = `
program p
param n = 8
param half = n / 2
scalar s1 = 1.5
scalar s2
array A[n][n]
array B[half]
proc main() {
  A[0][0] = s1 + s2
  B[0] = 0.0
}
`

func TestLayoutAlignment(t *testing.T) {
	p := build(t, src, 4)
	// scalars first: s1 at 0, s2 at 1; arrays line-aligned after.
	if p.Scalars["s1"].Addr != 0 || p.Scalars["s2"].Addr != 1 {
		t.Fatalf("scalar layout: %+v %+v", p.Scalars["s1"], p.Scalars["s2"])
	}
	a := p.Arrays["A"]
	if a.Base%4 != 0 {
		t.Fatalf("A base %d not line aligned", a.Base)
	}
	if a.Size != 64 || len(a.Dims) != 2 || a.Dims[0] != 8 {
		t.Fatalf("A shape: %+v", a)
	}
	b := p.Arrays["B"]
	if b.Base != a.Base+Word(a.Size) || b.Size != 4 {
		t.Fatalf("B placement: %+v (A ends at %d)", b, a.Base+Word(a.Size))
	}
	if p.MemWords < int64(b.Base)+b.Size {
		t.Fatalf("MemWords %d too small", p.MemWords)
	}
	if p.Scalars["s1"].Init != 1.5 {
		t.Fatal("scalar init lost")
	}
}

func TestParamEvaluation(t *testing.T) {
	p := build(t, src, 4)
	if p.Params["n"] != 8 || p.Params["half"] != 4 {
		t.Fatalf("params: %v", p.Params)
	}
}

func TestAddress(t *testing.T) {
	p := build(t, src, 4)
	a := p.Arrays["A"]
	addr, err := p.Address(a, []int64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if addr != a.Base+Word(2*8+3) {
		t.Fatalf("addr = %d", addr)
	}
	if _, err := p.Address(a, []int64{8, 0}); err == nil {
		t.Fatal("out-of-range subscript must error")
	}
	if _, err := p.Address(a, []int64{-1, 0}); err == nil {
		t.Fatal("negative subscript must error")
	}
	if _, err := p.Address(a, []int64{1}); err == nil {
		t.Fatal("rank mismatch must error")
	}
}

func TestNonPositiveDimension(t *testing.T) {
	ast, err := pfl.Parse(`
program p
param n = 0
array A[n]
proc main() { A[0] = 1 }
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := pfl.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(info, 4); err == nil || !strings.Contains(err.Error(), "non-positive") {
		t.Fatalf("want dimension error, got %v", err)
	}
}

func TestAffineConversion(t *testing.T) {
	p := build(t, src, 4)
	loopVars := map[string]bool{"i": true}
	parse := func(expr string) pfl.Expr {
		prog, err := pfl.Parse("program q\nscalar z\narray T[4]\nproc main() { z = " + expr + " }")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pfl.Check(prog); err == nil {
			// `i` is unbound in this synthetic program, so Check fails;
			// that is fine — we only need the AST.
			_ = err
		}
		return prog.Procs[0].Body.Stmts[0].(*pfl.AssignStmt).RHS
	}

	// param substituted with its value: n*2 + i - 1 -> 16 + i - 1
	e := p.Affine(parse("n * 2 + i - 1"), loopVars)
	want := symexpr.Var("i").Add(symexpr.Const(15))
	if !e.Equal(want) {
		t.Fatalf("affine = %v, want %v", e, want)
	}

	// scalar reference is a runtime value -> Unknown
	if !p.Affine(parse("s1 + 1"), loopVars).IsUnknown() {
		t.Fatal("scalar must be Unknown")
	}
	// array element in a subscript -> Unknown
	if !p.Affine(parse("T[0]"), loopVars).IsUnknown() {
		t.Fatal("array element must be Unknown")
	}
	// non-constant division -> Unknown; constant folds
	if !p.Affine(parse("i / 2"), loopVars).IsUnknown() {
		t.Fatal("i/2 must be Unknown")
	}
	if v, ok := p.Affine(parse("n / 2"), loopVars).IsConst(); !ok || v != 4 {
		t.Fatalf("n/2 = %v, %v", v, ok)
	}
	if v, ok := p.Affine(parse("n % 3"), loopVars).IsConst(); !ok || v != 2 {
		t.Fatalf("n%%3 = %v, %v", v, ok)
	}
	// i * i non-affine
	if !p.Affine(parse("i * i"), loopVars).IsUnknown() {
		t.Fatal("i*i must be Unknown")
	}
	// unary minus
	if !p.Affine(parse("-i"), loopVars).Equal(symexpr.Var("i").Neg()) {
		t.Fatal("-i")
	}
}
