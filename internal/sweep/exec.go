package sweep

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/svc"
)

// RunOne submits a single request to the fleet and waits for its
// terminal status, rotating across live workers with failover: a
// retryable failure (dead worker, 5xx, timeout) moves to the next
// worker, up to MaxAttempts. Concurrent callers share the coordinator's
// in-flight bound (len(Workers)*Window), so a parallel table build
// cannot flood the fleet.
func (c *Coordinator) RunOne(ctx context.Context, req *svc.RunRequest) (*svc.JobStatus, error) {
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.sem }()

	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		w := c.nextWorker()
		if w == nil {
			return nil, fmt.Errorf("sweep: every worker is dead")
		}
		st, retryable, err := c.submit(ctx, w, req)
		if err == nil {
			c.workerOK(w)
			return st, nil
		}
		if !retryable {
			c.workerOK(w)
			return nil, err
		}
		c.workerFailed(w)
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		sleepCtx(ctx, c.backoff(w))
	}
	return nil, fmt.Errorf("sweep: giving up after %d attempts: %w", c.opts.MaxAttempts, lastErr)
}

// nextWorker returns the next live worker round-robin, or nil when the
// whole fleet is dead.
func (c *Coordinator) nextWorker() *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	for range c.workers {
		w := c.workers[c.rr%len(c.workers)]
		c.rr++
		if !w.dead {
			return w
		}
	}
	return nil
}

// ExperExec adapts the coordinator to exper.Suite.Exec: each
// named-kernel point a table builder runs becomes one fleet submission,
// and the returned stats are the remote run's counters restored
// losslessly — so the rendered table is byte-identical to a local
// sequential run. p must be the suite's bench.Params (it sizes the
// kernel source the worker compiles).
//
//	s := exper.NewSuite(p, procs)
//	s.Exec = coord.ExperExec(ctx, p)
func (c *Coordinator) ExperExec(ctx context.Context, p bench.Params) func(kernel string, cfg machine.Config) (*stats.Stats, error) {
	return func(kernel string, cfg machine.Config) (*stats.Stats, error) {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return nil, fmt.Errorf("sweep: marshal config: %w", err)
		}
		req := &svc.RunRequest{
			Kernel: kernel,
			N:      p.N,
			Steps:  p.Steps,
			Scheme: cfg.Scheme.String(),
			Config: raw,
		}
		st, err := c.RunOne(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s/%s: %w", kernel, cfg.Scheme, err)
		}
		var rr core.RunResult
		if err := json.Unmarshal(st.Result, &rr); err != nil {
			return nil, fmt.Errorf("sweep: %s/%s: decode result: %w", kernel, cfg.Scheme, err)
		}
		return rr.Stats.Restore(), nil
	}
}
