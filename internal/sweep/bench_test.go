package sweep

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/svc"
)

// benchFleet builds n workers without the testing.T cleanup plumbing.
func benchFleet(n int) (urls []string, shutdown func()) {
	var hss []*httptest.Server
	var svs []*svc.Server
	for i := 0; i < n; i++ {
		// One sim slot per worker: fleet size is then the only
		// parallelism axis, as on a real multi-host fleet.
		s := svc.New(svc.Options{Workers: 1})
		hs := httptest.NewServer(s.Handler())
		urls = append(urls, hs.URL)
		hss = append(hss, hs)
		svs = append(svs, s)
	}
	return urls, func() {
		for i := range hss {
			hss[i].Close()
			svs[i].Close()
		}
	}
}

func benchSpec() Spec {
	return Spec{
		Kernels: []string{"ocean", "trfd"},
		Schemes: []string{"BASE", "TPI", "HW"},
		N:       []int{16, 24},
	}
}

// BenchmarkSweepThroughput measures one full sweep of a 12-point grid
// per iteration: cold (fresh fleet each iteration — every point
// simulates) vs warm (fleet reused — every point is a cache hit), at 1
// and 2 in-process workers. The cold 2-worker/1-worker ratio is the
// sharding speedup; the warm numbers are the coordinator+HTTP floor.
// docs/results.md records the measured medians.
func BenchmarkSweepThroughput(b *testing.B) {
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d/cold", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				urls, shutdown := benchFleet(n)
				coord, err := New(Options{Workers: urls})
				if err != nil {
					b.Fatal(err)
				}
				if err := coord.WirePeers(context.Background()); err != nil {
					b.Fatal(err)
				}
				jobs, err := benchSpec().Expand()
				if err != nil {
					b.Fatal(err)
				}
				_, st, err := coord.Do(context.Background(), jobs, nil)
				if err != nil || st.Done != len(jobs) {
					b.Fatalf("err=%v stats=%+v", err, st)
				}
				shutdown()
			}
		})
		b.Run(fmt.Sprintf("workers=%d/warm", n), func(b *testing.B) {
			urls, shutdown := benchFleet(n)
			defer shutdown()
			coord, err := New(Options{Workers: urls})
			if err != nil {
				b.Fatal(err)
			}
			if err := coord.WirePeers(context.Background()); err != nil {
				b.Fatal(err)
			}
			warm, err := benchSpec().Expand()
			if err != nil {
				b.Fatal(err)
			}
			if _, st, err := coord.Do(context.Background(), warm, nil); err != nil || st.Done != len(warm) {
				b.Fatalf("warm-up: err=%v stats=%+v", err, st)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs, err := benchSpec().Expand()
				if err != nil {
					b.Fatal(err)
				}
				_, st, err := coord.Do(context.Background(), jobs, nil)
				if err != nil || st.Done != len(jobs) {
					b.Fatalf("err=%v stats=%+v", err, st)
				}
			}
		})
	}
}
