// Package sweep is the distributed parameter-sweep fabric: a
// coordinator that expands a sweep specification into a job list and
// shards it across a fleet of tpiserved workers, with a bounded
// in-flight window per worker, streaming partial results as they land,
// and retry/rebalance when a worker dies mid-sweep.
//
// Results stay byte-identical to local runs: every job resolves to the
// same content-addressed result key on every worker (sha256 over the
// program source, compile options, canonical config, and obs level), the
// service's fidelity contract pins a worker's result JSON to what a
// local run produces, and stats.Snapshot.Restore is lossless — so the
// experiment tables built from a sweep render the same bytes as
// cmd/experiments running sequentially in-process. The fleet shares
// work through the content-addressed caches: each worker serves its
// result cache on GET /v1/cache/{key} and probes its siblings before
// simulating a miss, so a point simulated anywhere is simulated once.
//
// cmd/tpisweep is the CLI; docs/SERVICE.md documents the protocol.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/svc"
)

// Spec is a sweep grid: the cross product of every listed axis, one job
// per point. Empty axes take the defaults noted on each field; the zero
// Spec expands to the EXPERIMENTS.md cross product (every benchmark
// kernel under every coherence scheme at the unit-test size).
type Spec struct {
	// Name labels the sweep in logs and output; purely cosmetic.
	Name string `json:"name,omitempty"`
	// Kernels are benchmark kernel names (default: all of bench.Names).
	Kernels []string `json:"kernels,omitempty"`
	// Schemes are coherence scheme names (default: every registered scheme).
	Schemes []string `json:"schemes,omitempty"`
	// N are kernel grid sizes (default: the unit-test size, 24).
	N []int `json:"n,omitempty"`
	// Steps are kernel time-step counts (default: 2).
	Steps []int `json:"steps,omitempty"`
	// Procs are processor counts, applied as a Config override axis
	// (default: the machine default, i.e. no override).
	Procs []int `json:"procs,omitempty"`
	// Configs are machine.Config override objects (Go field names, as in
	// the service API), an additional cross-product axis. Omitted means
	// one point with no overrides.
	Configs []json.RawMessage `json:"configs,omitempty"`
	// Obs is the instrumentation level for every job ("off" or
	// "counters"; default off).
	Obs string `json:"obs,omitempty"`
	// TimeoutMS bounds each job server-side (0 = server default).
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
}

// Job is one expanded sweep point. Seq is the job's stable index in
// expansion order — results are keyed by it, which is what makes sweep
// output deterministic regardless of which worker finishes first.
type Job struct {
	Seq   int            `json:"seq"`
	Label string         `json:"label"`
	Req   svc.RunRequest `json:"req"`
}

// Expand lists the grid's jobs in deterministic nested-axis order
// (kernels outermost, configs innermost). Every job is validated by
// resolving its result key locally, so a bad point fails the sweep
// before any network traffic.
func (sp Spec) Expand() ([]Job, error) {
	kernels := sp.Kernels
	if len(kernels) == 0 {
		kernels = bench.Names
	}
	schemes := sp.Schemes
	if len(schemes) == 0 {
		schemes = make([]string, len(machine.AllSchemes))
		for i, sc := range machine.AllSchemes {
			schemes[i] = sc.String()
		}
	}
	ns := sp.N
	if len(ns) == 0 {
		ns = []int{bench.DefaultParams().N}
	}
	steps := sp.Steps
	if len(steps) == 0 {
		steps = []int{bench.DefaultParams().Steps}
	}
	procs := sp.Procs
	if len(procs) == 0 {
		procs = []int{0} // 0 = no override
	}
	configs := sp.Configs
	if len(configs) == 0 {
		configs = []json.RawMessage{nil}
	}

	var jobs []Job
	for _, k := range kernels {
		for _, scheme := range schemes {
			for _, n := range ns {
				for _, st := range steps {
					for _, p := range procs {
						for ci, cfg := range configs {
							merged, err := mergeConfig(cfg, p)
							if err != nil {
								return nil, fmt.Errorf("sweep: config %d: %w", ci, err)
							}
							job := Job{
								Seq:   len(jobs),
								Label: pointLabel(k, scheme, n, st, p, ci, len(configs)),
								Req: svc.RunRequest{
									Kernel:    k,
									Scheme:    scheme,
									N:         n,
									Steps:     st,
									Config:    merged,
									Obs:       sp.Obs,
									TimeoutMS: sp.TimeoutMS,
								},
							}
							if _, err := svc.RequestKey(&job.Req); err != nil {
								return nil, fmt.Errorf("sweep: point %s: %w", job.Label, err)
							}
							jobs = append(jobs, job)
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

// mergeConfig folds a Procs-axis override into a config-override
// object. The round trip through a map keeps whatever fields the
// object already sets; the server decodes the result into a struct, so
// key order does not matter.
func mergeConfig(cfg json.RawMessage, procs int) (json.RawMessage, error) {
	if procs == 0 {
		return cfg, nil
	}
	m := map[string]json.RawMessage{}
	if len(cfg) > 0 {
		if err := json.Unmarshal(cfg, &m); err != nil {
			return nil, err
		}
	}
	p, err := json.Marshal(procs)
	if err != nil {
		return nil, err
	}
	m["Procs"] = p
	return json.Marshal(m)
}

// pointLabel names one grid point for logs and streamed output.
func pointLabel(kernel, scheme string, n, steps, procs, ci, nconfigs int) string {
	l := fmt.Sprintf("%s/%s/n%d/s%d", kernel, scheme, n, steps)
	if procs != 0 {
		l += fmt.Sprintf("/p%d", procs)
	}
	if nconfigs > 1 {
		l += fmt.Sprintf("/c%d", ci)
	}
	return l
}

// ParseSpec decodes a Spec from JSON, rejecting unknown fields.
func ParseSpec(data []byte) (Spec, error) {
	var sp Spec
	if err := unmarshalStrict(data, &sp); err != nil {
		return Spec{}, fmt.Errorf("sweep: spec JSON: %w", err)
	}
	return sp, nil
}

func unmarshalStrict(data []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}
