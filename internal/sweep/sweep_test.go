package sweep

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/exper"
	"repro/internal/machine"
	"repro/internal/svc"
)

// fleet spins up n real job servers and returns their base URLs plus
// the httptest handles (for mid-sweep kills).
func fleet(t *testing.T, n int) ([]string, []*httptest.Server, []*svc.Server) {
	t.Helper()
	urls := make([]string, n)
	hss := make([]*httptest.Server, n)
	svs := make([]*svc.Server, n)
	for i := 0; i < n; i++ {
		s := svc.New(svc.Options{Workers: 2})
		hs := httptest.NewServer(s.Handler())
		urls[i], hss[i], svs[i] = hs.URL, hs, s
		t.Cleanup(func() {
			hs.Close()
			s.Close()
		})
	}
	return urls, hss, svs
}

func smallSpec() Spec {
	return Spec{
		Kernels: []string{"ocean", "trfd"},
		Schemes: []string{"BASE", "TPI"},
		N:       []int{16, 24},
	}
}

func TestSpecExpandDefaults(t *testing.T) {
	jobs, err := Spec{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := len(bench.Names) * len(machine.AllSchemes) // kernels × AllSchemes
	if len(jobs) != want {
		t.Fatalf("default grid has %d jobs, want %d", len(jobs), want)
	}
	for i, j := range jobs {
		if j.Seq != i {
			t.Fatalf("job %d has seq %d", i, j.Seq)
		}
	}
}

func TestSpecExpandAxes(t *testing.T) {
	sp := Spec{
		Kernels: []string{"ocean"},
		Schemes: []string{"TPI", "HW"},
		N:       []int{16},
		Procs:   []int{8, 32},
		Configs: []json.RawMessage{[]byte(`{"LineWords":4}`), []byte(`{"LineWords":8}`)},
	}
	jobs, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*2*2 {
		t.Fatalf("got %d jobs, want 8", len(jobs))
	}
	// The Procs axis must fold into each config override.
	var cfg struct {
		Procs     int
		LineWords int
	}
	if err := json.Unmarshal(jobs[0].Req.Config, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Procs != 8 || cfg.LineWords != 4 {
		t.Fatalf("merged config = %+v", cfg)
	}
	if !strings.Contains(jobs[0].Label, "p8") {
		t.Fatalf("label %q missing procs axis", jobs[0].Label)
	}
}

func TestSpecExpandRejectsBadPoint(t *testing.T) {
	if _, err := (Spec{Kernels: []string{"no-such-kernel"}}).Expand(); err == nil {
		t.Fatal("bad kernel accepted")
	}
	if _, err := (Spec{Configs: []json.RawMessage{[]byte(`{"LineWords":3}`)}}).Expand(); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSweepCompletes(t *testing.T) {
	urls, _, _ := fleet(t, 2)
	coord, err := New(Options{Workers: urls, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}

	var streamed atomic.Int64
	results, st, err := coord.Do(context.Background(), jobs, func(Result) { streamed.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", i, r.Job.Label, r.Err)
		}
		if r.Job.Seq != i || r.Status == nil || r.Status.State != svc.StateDone {
			t.Fatalf("job %d: seq=%d status=%+v", i, r.Job.Seq, r.Status)
		}
		if len(r.Status.Result) == 0 {
			t.Fatalf("job %d: empty result", i)
		}
	}
	if int(streamed.Load()) != len(jobs) {
		t.Fatalf("streamed %d results, want %d", streamed.Load(), len(jobs))
	}
	if st.Done != len(jobs) || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSweepRebalanceOnWorkerDeath kills one of two workers after the
// first result lands; the sweep must still complete with exactly one
// result per job.
func TestSweepRebalanceOnWorkerDeath(t *testing.T) {
	urls, hss, _ := fleet(t, 2)
	coord, err := New(Options{
		Workers:        urls,
		Window:         2,
		MaxAttempts:    6,
		DeathThreshold: 2,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}

	var once atomic.Bool
	kill := func(Result) {
		if once.CompareAndSwap(false, true) {
			hss[1].CloseClientConnections()
			hss[1].Close()
		}
	}
	results, st, err := coord.Do(context.Background(), jobs, kill)
	if err != nil {
		t.Fatalf("sweep failed: %v (stats %+v)", err, st)
	}
	for i, r := range results {
		if r.Err != nil || r.Status == nil || r.Status.State != svc.StateDone {
			t.Fatalf("job %d (%s): err=%v status=%+v", i, r.Job.Label, r.Err, r.Status)
		}
	}
	if st.Done != len(jobs) {
		t.Fatalf("stats %+v", st)
	}
}

// TestSweepBrokenWorker drives the death threshold with a worker that
// always 500s: the broken worker must be marked dead and the sweep
// completes on the survivor, with retries recorded.
func TestSweepBrokenWorker(t *testing.T) {
	urls, _, _ := fleet(t, 1)
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer broken.Close()

	coord, err := New(Options{
		Workers:        []string{urls[0], broken.URL},
		Window:         1,
		MaxAttempts:    8,
		DeathThreshold: 1,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Spec{Kernels: []string{"ocean"}, Schemes: []string{"BASE", "TPI", "HW"}, N: []int{16}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := coord.Do(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	if st.WorkerDeaths != 1 {
		t.Fatalf("workerDeaths = %d, want 1 (stats %+v)", st.WorkerDeaths, st)
	}
	if st.Retries == 0 {
		t.Fatalf("expected retries from the broken worker (stats %+v)", st)
	}
}

// TestSweepAllWorkersDead pins the no-hang contract: when the whole
// fleet is unreachable, Do returns an error promptly with a failure
// Result for every job.
func TestSweepAllWorkersDead(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	coord, err := New(Options{
		Workers:        []string{deadURL},
		MaxAttempts:    2,
		DeathThreshold: 1,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
		RequestTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Spec{Kernels: []string{"ocean"}, Schemes: []string{"TPI"}, N: []int{16}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var results []Result
	var sweepErr error
	go func() {
		defer close(done)
		results, _, sweepErr = coord.Do(context.Background(), jobs, nil)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Do hung with a dead fleet")
	}
	if sweepErr == nil {
		t.Fatal("expected a sweep error")
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d unexpectedly succeeded", i)
		}
	}
}

// TestWirePeersSharesCache wires two workers as peers, warms one, and
// sweeps through the other: every point must be served from the peer's
// cache, not simulated twice.
func TestWirePeersSharesCache(t *testing.T) {
	urls, _, svs := fleet(t, 2)
	coordA, err := New(Options{Workers: urls[:1]})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, st, err := coordA.Do(context.Background(), jobs, nil); err != nil || st.Done != len(jobs) {
		t.Fatalf("warm-up sweep: err=%v stats=%+v", err, st)
	}

	coordB, err := New(Options{Workers: urls[1:]})
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(Options{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.WirePeers(context.Background()); err != nil {
		t.Fatal(err)
	}
	jobs2, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := coordB.Do(context.Background(), jobs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeerServed != len(jobs2) || st.Simulated != 0 {
		t.Fatalf("expected all peer-served, got %+v", st)
	}
	if m := svs[1].MetricsSnapshot(); m.Jobs.Simulated != 0 {
		t.Fatalf("worker B simulated %d jobs", m.Jobs.Simulated)
	}
}

// TestWarmResubmitCachedRate is the warm-resubmission floor the CI
// smoke also asserts end to end: resubmitting an identical sweep must
// be served (almost) entirely from the fleet's caches.
func TestWarmResubmitCachedRate(t *testing.T) {
	urls, _, _ := fleet(t, 2)
	coord, err := New(Options{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	// Peer wiring makes the floor deterministic: a warm point landing on
	// the other worker is adopted from its sibling instead of re-simulated.
	if err := coord.WirePeers(context.Background()); err != nil {
		t.Fatal(err)
	}
	jobs, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, st, err := coord.Do(context.Background(), jobs, nil); err != nil || st.Done != len(jobs) {
		t.Fatalf("cold sweep: err=%v stats=%+v", err, st)
	}
	jobs2, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := coord.Do(context.Background(), jobs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CachedRate() < 0.9 {
		t.Fatalf("warm cached rate %.2f below 0.9 (stats %+v)", st.CachedRate(), st)
	}
}

// TestExperExecMatchesLocal is the tables-over-the-fleet fidelity
// contract: an experiment built through the distributed executor
// renders byte-identical output to the local sequential build.
func TestExperExecMatchesLocal(t *testing.T) {
	p := bench.DefaultParams()

	local := exper.NewSuite(p, 8)
	want, err := local.E3MissRates()
	if err != nil {
		t.Fatal(err)
	}

	urls, _, _ := fleet(t, 2)
	coord, err := New(Options{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	remote := exper.NewSuite(p, 8)
	remote.Exec = coord.ExperExec(context.Background(), p)
	got, err := remote.E3MissRates()
	if err != nil {
		t.Fatal(err)
	}

	if got.String() != want.String() {
		t.Fatalf("distributed table differs from local:\n--- local ---\n%s--- fleet ---\n%s", want.String(), got.String())
	}
}
