package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/svc"
)

// Options sizes a Coordinator. Zero values select the defaults noted on
// each field.
type Options struct {
	// Workers are the fleet's base URLs; at least one is required.
	Workers []string
	// Window is the in-flight submission bound per worker (default 4).
	// The coordinator never has more than len(Workers)*Window jobs on
	// the wire, so a large grid cannot flood a worker's queue.
	Window int
	// MaxAttempts bounds how many times one job is (re)submitted before
	// it is recorded as failed (default 3). Attempts after a worker
	// death land on a different worker — that is the rebalance path.
	MaxAttempts int
	// DeathThreshold is how many consecutive failures mark a worker
	// dead (default 3). A dead worker's slots stop, its queued share is
	// picked up by the survivors, and it is not retried this sweep.
	DeathThreshold int
	// RequestTimeout bounds each synchronous submission, queue and
	// simulation time included (default 5m).
	RequestTimeout time.Duration
	// BackoffBase seeds the jittered exponential pause a worker slot
	// takes after a failure before pulling the next job (default 100ms,
	// capped by BackoffMax, default 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client issues the HTTP traffic (default: an httpx client with
	// RequestTimeout and one transport-level retry; the coordinator owns
	// the higher-level retry/rebalance policy).
	Client *httpx.Client
	// Logger receives sweep progress logs (default: discard).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.DeathThreshold <= 0 {
		o.DeathThreshold = 3
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Minute
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = httpx.New(httpx.Options{Timeout: o.RequestTimeout, Retries: 1})
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// Result is one job's outcome, delivered exactly once per Seq.
type Result struct {
	Job      Job
	Worker   string // base URL of the worker that produced the outcome
	Attempts int
	// Status is the terminal job document; nil when the job failed
	// permanently without one (all attempts exhausted or fleet dead).
	Status *svc.JobStatus
	Err    error
}

// Stats aggregates one sweep.
type Stats struct {
	Jobs         int     `json:"jobs"`
	Done         int     `json:"done"`
	Failed       int     `json:"failed"`
	Cached       int     `json:"cached"`     // served from a worker's result cache
	PeerServed   int     `json:"peerServed"` // subset of Cached adopted from a sibling
	Simulated    int     `json:"simulated"`  // actually ran on a worker
	Retries      int     `json:"retries"`    // resubmissions after a failed attempt
	WorkerDeaths int     `json:"workerDeaths"`
	ElapsedMS    float64 `json:"elapsedMs"`
}

// CachedRate is the fraction of completed jobs served without a fresh
// simulation (local result-cache hits plus peer adoptions) — what the
// warm-resubmission CI floor asserts on.
func (s Stats) CachedRate() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.Cached) / float64(s.Done)
}

// worker is one fleet member's scheduling state. consec and dead are
// guarded by the coordinator mutex; dying closes deadCh to wake slots
// blocked on the queue.
type worker struct {
	url    string
	consec int
	dead   bool
	deadCh chan struct{}
}

// Coordinator shards sweeps across a tpiserved fleet. Worker liveness
// is remembered across calls on the same Coordinator: a worker marked
// dead during one sweep is skipped by later ones.
type Coordinator struct {
	opts   Options
	log    *slog.Logger
	client *httpx.Client

	mu      sync.Mutex
	workers []*worker
	live    int
	sem     chan struct{} // RunOne in-flight bound: len(workers)*Window
	rr      int           // RunOne round-robin cursor
}

// New validates the worker list and builds a coordinator.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("sweep: no workers")
	}
	c := &Coordinator{
		opts:   opts,
		log:    opts.Logger,
		client: opts.Client,
		sem:    make(chan struct{}, len(opts.Workers)*opts.Window),
	}
	for _, w := range opts.Workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		u, err := url.Parse(w)
		if err != nil {
			return nil, fmt.Errorf("sweep: worker %q: %w", w, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("sweep: worker %q: want an absolute http(s) URL", w)
		}
		c.workers = append(c.workers, &worker{url: w, deadCh: make(chan struct{})})
	}
	c.live = len(c.workers)
	return c, nil
}

// Workers returns the fleet's base URLs in configuration order.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.url
	}
	return out
}

// WirePeers tells every worker about its siblings (PUT /v1/peers), so
// the fleet's content-addressed caches probe each other on miss. Best
// effort per worker: a worker that cannot be reached is logged and
// skipped (it may be the one the sweep is about to discover dead).
func (c *Coordinator) WirePeers(ctx context.Context) error {
	if len(c.workers) < 2 {
		return nil
	}
	var firstErr error
	for i, w := range c.workers {
		peers := make([]string, 0, len(c.workers)-1)
		for j, p := range c.workers {
			if j != i {
				peers = append(peers, p.url)
			}
		}
		body, err := json.Marshal(map[string][]string{"peers": peers})
		if err != nil {
			return err
		}
		status, respBody, err := c.client.Do(ctx, http.MethodPut, w.url+"/v1/peers", "application/json", body)
		switch {
		case err != nil:
			c.log.Warn("peer wiring failed", "worker", w.url, "error", err.Error())
			if firstErr == nil {
				firstErr = err
			}
		case status != http.StatusOK:
			c.log.Warn("peer wiring rejected", "worker", w.url, "status", status)
			if firstErr == nil {
				firstErr = &httpx.StatusError{Status: status, Body: respBody}
			}
		}
	}
	return firstErr
}

// task is one job's scheduling state inside a sweep.
type task struct {
	job      Job
	attempts int
}

// sweepRun is the per-Do state: the shared queue, the exactly-once
// result slots, and the completion signals.
type sweepRun struct {
	c *Coordinator

	mu      sync.Mutex
	pending []*task
	signal  chan struct{} // capacity 1; re-armed by pop while items remain
	open    int           // jobs without a delivered result
	filled  []bool
	results []Result
	stats   Stats
	done    chan struct{} // closed when open reaches 0
	allDead chan struct{} // closed when the last live worker dies

	deadOnce sync.Once   // closes allDead exactly once
	cbCh     chan Result // nil unless a streaming callback is attached
}

// Do runs every job to a terminal outcome and returns the results in
// Seq order. onResult (optional) streams each result as it lands, from
// the delivering worker's goroutine, serialized. Do returns an error
// only when the sweep could not complete — every worker died or ctx
// ended — and even then the returned slice has one Result per job (the
// undeliverable ones carry the error).
func (c *Coordinator) Do(ctx context.Context, jobs []Job, onResult func(Result)) ([]Result, Stats, error) {
	start := time.Now()
	r := &sweepRun{
		c:       c,
		signal:  make(chan struct{}, 1),
		open:    len(jobs),
		filled:  make([]bool, len(jobs)),
		results: make([]Result, len(jobs)),
		done:    make(chan struct{}),
		allDead: make(chan struct{}),
	}
	r.stats.Jobs = len(jobs)
	for i := range jobs {
		if jobs[i].Seq != i {
			return nil, r.stats, fmt.Errorf("sweep: job %d has seq %d; expand jobs with Spec.Expand", i, jobs[i].Seq)
		}
		r.pending = append(r.pending, &task{job: jobs[i]})
	}
	if len(jobs) == 0 {
		return r.results, r.stats, nil
	}

	// The callback runs on its own goroutine in delivery order; the
	// channel holds one slot per job, so a delivery never blocks on a
	// slow consumer.
	cbDone := make(chan struct{})
	if onResult != nil {
		r.cbCh = make(chan Result, len(jobs))
		go func() {
			defer close(cbDone)
			for res := range r.cbCh {
				onResult(res)
			}
		}()
	} else {
		close(cbDone)
	}

	c.mu.Lock()
	if c.live == 0 {
		c.mu.Unlock()
		return nil, r.stats, fmt.Errorf("sweep: every worker is dead")
	}
	var wg sync.WaitGroup
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		for s := 0; s < c.opts.Window; s++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				r.slot(ctx, w)
			}(w)
		}
	}
	c.mu.Unlock()

	var sweepErr error
	select {
	case <-r.done:
	case <-ctx.Done():
		sweepErr = fmt.Errorf("sweep: %w", ctx.Err())
	case <-r.allDead:
		sweepErr = fmt.Errorf("sweep: every worker died (%d of %d jobs finished)", r.stats.Done+r.stats.Failed, len(jobs))
	}
	if sweepErr != nil {
		// Deliver the stragglers so the result set is complete.
		r.mu.Lock()
		for i := range r.results {
			if !r.filled[i] {
				r.deliverLocked(Result{Job: jobs[i], Err: sweepErr})
			}
		}
		r.mu.Unlock()
	}
	wg.Wait()
	if r.cbCh != nil {
		close(r.cbCh) // every job delivered exactly once by now
	}
	<-cbDone

	r.mu.Lock()
	r.stats.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	results, stats := r.results, r.stats
	r.mu.Unlock()
	return results, stats, sweepErr
}

// slot is one of a worker's Window scheduling loops: pull a task,
// submit it, classify, repeat. It exits when the queue drains, the
// context ends, or its worker dies.
func (r *sweepRun) slot(ctx context.Context, w *worker) {
	for {
		t := r.pop(ctx, w)
		if t == nil {
			return
		}
		t.attempts++
		st, retryable, err := r.c.submit(ctx, w, &t.job.Req)
		if err == nil {
			r.c.workerOK(w)
			r.deliver(Result{Job: t.job, Worker: w.url, Attempts: t.attempts, Status: st})
			continue
		}
		if !retryable {
			// The job itself is bad (4xx, failed state); the worker is fine.
			r.c.workerOK(w)
			r.deliver(Result{Job: t.job, Worker: w.url, Attempts: t.attempts, Status: st, Err: err})
			continue
		}
		r.c.log.Warn("attempt failed", "job", t.job.Label, "worker", w.url,
			"attempt", t.attempts, "error", err.Error())
		died, lastAlive := r.c.workerFailed(w)
		if died {
			r.c.log.Warn("worker marked dead", "worker", w.url)
			r.mu.Lock()
			r.stats.WorkerDeaths++
			r.mu.Unlock()
			if lastAlive {
				r.deadOnce.Do(func() { close(r.allDead) })
			}
		}
		if t.attempts >= r.c.opts.MaxAttempts {
			r.deliver(Result{Job: t.job, Worker: w.url, Attempts: t.attempts, Err: err})
		} else {
			r.requeue(t)
		}
		if died {
			return
		}
		// Pause this slot before it pulls again, so a flapping worker
		// backs off instead of burning through the queue.
		sleepCtx(ctx, r.c.backoff(w))
	}
}

// pop blocks until a task is available or the sweep is over for this
// slot (queue drained, worker dead, context done). While more tasks
// remain after a pop, the signal is re-armed so sibling slots wake too.
func (r *sweepRun) pop(ctx context.Context, w *worker) *task {
	for {
		r.mu.Lock()
		if r.open == 0 {
			r.mu.Unlock()
			return nil
		}
		if len(r.pending) > 0 {
			t := r.pending[0]
			r.pending = r.pending[1:]
			more := len(r.pending) > 0
			r.mu.Unlock()
			if more {
				r.arm()
			}
			return t
		}
		r.mu.Unlock()
		select {
		case <-r.signal:
		case <-r.done:
			return nil
		case <-w.deadCh:
			return nil
		case <-ctx.Done():
			return nil
		}
	}
}

// arm makes the signal channel hot without blocking.
func (r *sweepRun) arm() {
	select {
	case r.signal <- struct{}{}:
	default:
	}
}

// requeue returns a failed task to the queue for another worker.
func (r *sweepRun) requeue(t *task) {
	r.mu.Lock()
	r.pending = append(r.pending, t)
	r.stats.Retries++
	r.mu.Unlock()
	r.arm()
}

// deliver records a terminal outcome. The first delivery for a Seq
// wins; duplicates (a timed-out submission whose original worker later
// answered) are dropped, which is what makes sweep output exactly-once.
func (r *sweepRun) deliver(res Result) {
	r.mu.Lock()
	r.deliverLocked(res)
	r.mu.Unlock()
}

func (r *sweepRun) deliverLocked(res Result) {
	seq := res.Job.Seq
	if r.filled[seq] {
		return
	}
	r.filled[seq] = true
	r.results[seq] = res
	switch {
	case res.Err != nil:
		r.stats.Failed++
	default:
		r.stats.Done++
		if res.Status.Cached {
			r.stats.Cached++
		}
		if res.Status.Peer {
			r.stats.PeerServed++
		}
		if !res.Status.Cached {
			r.stats.Simulated++
		}
	}
	r.open--
	if r.open == 0 {
		close(r.done)
	}
	if r.cbCh != nil {
		r.cbCh <- res // capacity len(jobs): never blocks
	}
}

// submit posts one run synchronously and classifies the outcome.
// retryable=true means the failure is the worker's fault (or transient)
// and the job should move on; false with err set means the job itself
// is bad.
func (c *Coordinator) submit(ctx context.Context, w *worker, req *svc.RunRequest) (st *svc.JobStatus, retryable bool, err error) {
	status, body, err := c.client.PostJSON(ctx, w.url+"/v1/runs", req)
	if err != nil {
		return nil, true, err // transport-level: dead or unreachable worker
	}
	var js svc.JobStatus
	if jerr := json.Unmarshal(body, &js); jerr != nil {
		return nil, true, fmt.Errorf("worker %s: HTTP %d: undecodable body: %v", w.url, status, jerr)
	}
	switch {
	case status == http.StatusOK && js.State == svc.StateDone:
		return &js, false, nil
	case status == http.StatusBadRequest || status == http.StatusNotFound ||
		status == http.StatusRequestEntityTooLarge:
		return &js, false, fmt.Errorf("worker %s: HTTP %d: %s", w.url, status, statusError(&js, body))
	case js.State == svc.StateFailed:
		// A deterministic simulation failure would fail everywhere; do
		// not burn the other workers on it.
		return &js, false, fmt.Errorf("worker %s: job failed: %s", w.url, statusError(&js, body))
	default:
		// 5xx/429/503, cancelled (server-side deadline), or an
		// unexpected state: retry elsewhere.
		return &js, true, fmt.Errorf("worker %s: HTTP %d state %q: %s", w.url, status, js.State, statusError(&js, body))
	}
}

// statusError prefers the structured error field over the raw body.
func statusError(st *svc.JobStatus, raw []byte) string {
	if st != nil && st.Error != "" {
		return st.Error
	}
	s := strings.TrimSpace(string(raw))
	if len(s) > 256 {
		s = s[:256] + "...(truncated)"
	}
	return s
}

// workerOK resets a worker's consecutive-failure count.
func (c *Coordinator) workerOK(w *worker) {
	c.mu.Lock()
	w.consec = 0
	c.mu.Unlock()
}

// workerFailed counts a failure against w and reports whether this one
// crossed the death threshold, and whether it was the fleet's last
// live worker.
func (c *Coordinator) workerFailed(w *worker) (died, lastAlive bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.dead {
		return false, false
	}
	w.consec++
	if w.consec < c.opts.DeathThreshold {
		return false, false
	}
	w.dead = true
	close(w.deadCh)
	c.live--
	return true, c.live == 0
}

// backoff computes the jittered pause after a failure on w: uniform in
// [b/2, b] for b = min(BackoffBase << consec, BackoffMax).
func (c *Coordinator) backoff(w *worker) time.Duration {
	c.mu.Lock()
	n := w.consec
	c.mu.Unlock()
	d := c.opts.BackoffBase
	for i := 0; i < n && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	half := d / 2
	return half + rand.N(half+1)
}

// sleepCtx waits for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
