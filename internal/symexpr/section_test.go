package symexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeOverlapDisjointConstants(t *testing.T) {
	a := Range{Lo: Const(0), Hi: Const(9), Step: 1}
	b := Range{Lo: Const(10), Hi: Const(19), Step: 1}
	if a.MayOverlap(b, nil) {
		t.Fatal("disjoint constant ranges must not overlap")
	}
	c := Range{Lo: Const(9), Hi: Const(12), Step: 1}
	if !a.MayOverlap(c, nil) {
		t.Fatal("touching ranges overlap")
	}
}

func TestRangeOverlapStrideDisproof(t *testing.T) {
	// 2i over [0..18] vs 2i+1 over [1..19]: same stride 2, offset parity differs.
	even := Range{Lo: Const(0), Hi: Const(18), Step: 2}
	odd := Range{Lo: Const(1), Hi: Const(19), Step: 2}
	if even.MayOverlap(odd, nil) {
		t.Fatal("even/odd strided ranges must be disjoint")
	}
	if !even.MayOverlap(even, nil) {
		t.Fatal("range overlaps itself")
	}
}

func TestRangeOverlapSymbolicConservative(t *testing.T) {
	a := Range{Lo: Var("n"), Hi: Var("n").Add(Const(5)), Step: 1}
	b := Range{Lo: Const(0), Hi: Const(3), Step: 1}
	// without bounds on n, must be conservative
	if !a.MayOverlap(b, nil) {
		t.Fatal("unbounded symbolic ranges must conservatively overlap")
	}
	// with n >= 100, provably disjoint
	env := Env{"n": {Lo: 100, Hi: 200, Known: true}}
	if a.MayOverlap(b, env) {
		t.Fatal("n in [100,200] makes ranges disjoint")
	}
}

func TestRangeMustContain(t *testing.T) {
	outer := Range{Lo: Const(0), Hi: Const(99), Step: 1}
	inner := Range{Lo: Const(10), Hi: Const(20), Step: 1}
	if !outer.MustContain(inner, nil) {
		t.Fatal("constant containment")
	}
	if inner.MustContain(outer, nil) {
		t.Fatal("inner does not contain outer")
	}
	// symbolic: [0 : n-1] contains [1 : n-2] given n >= 2 -- needs bounds
	env := Env{"n": {Lo: 2, Hi: 1 << 30, Known: true}}
	a := Range{Lo: Const(0), Hi: Var("n").Sub(Const(1)), Step: 1}
	b := Range{Lo: Const(1), Hi: Var("n").Sub(Const(2)), Step: 1}
	if !a.MustContain(b, env) {
		t.Fatal("symbolic containment via difference bounds")
	}
	// identical symbolic ranges always contain each other
	c := Range{Lo: Var("p"), Hi: Var("q"), Step: 1}
	if !c.MustContain(c, nil) {
		t.Fatal("identical ranges")
	}
}

func TestRangeExpand(t *testing.T) {
	// point 2i+1, i in [0, n-1]  ->  [1 : 2n-1 : 2]
	p := PointRange(Var("i").MulConst(2).Add(Const(1)))
	e := p.Expand("i", Const(0), Var("n").Sub(Const(1)))
	if got, want := e.String(), "1:2*n-1:2"; got != want {
		t.Fatalf("expand = %q, want %q", got, want)
	}
	// decreasing coefficient: point n-i over i in [0, 9] -> [n-9 : n]
	p2 := PointRange(Var("n").Sub(Var("i")))
	e2 := p2.Expand("i", Const(0), Const(9))
	if got, want := e2.String(), "n-9:n"; got != want {
		t.Fatalf("expand = %q, want %q", got, want)
	}
}

func TestSectionOverlapAndContain(t *testing.T) {
	env := Env{"n": {Lo: 64, Hi: 64, Known: true}}
	// A[0:31][j] vs A[32:63][j'] disjoint in dim 0
	s1 := Section{Dims: []Range{{Lo: Const(0), Hi: Const(31), Step: 1}, FullRange()}}
	s2 := Section{Dims: []Range{{Lo: Const(32), Hi: Const(63), Step: 1}, FullRange()}}
	if s1.MayOverlap(s2, env) {
		t.Fatal("row-disjoint sections")
	}
	full := FullSection(2)
	if !full.MayOverlap(s1, env) {
		t.Fatal("full overlaps everything")
	}
	// Self-containment holds for known bounds, but an Unknown-bounded
	// dimension denotes *some* unknown index set, so a section containing
	// one can never prove containment — not even of itself.
	bounded := Section{Dims: []Range{
		{Lo: Const(0), Hi: Const(31), Step: 1},
		{Lo: Var("j"), Hi: Var("j"), Step: 1},
	}}
	if !bounded.MustContain(bounded, env) {
		t.Fatal("self containment of known-bound section")
	}
	if s1.MustContain(s1, env) {
		t.Fatal("unknown-bounded section must not prove self-containment")
	}
	if s1.MustContain(full, env) {
		t.Fatal("bounded section cannot contain full section")
	}
}

func TestSectionHull(t *testing.T) {
	a := Section{Dims: []Range{{Lo: Const(0), Hi: Const(9), Step: 1}}}
	b := Section{Dims: []Range{{Lo: Const(5), Hi: Const(20), Step: 1}}}
	h := a.Hull(b, nil)
	if got, want := h.String(), "[0:20]"; got != want {
		t.Fatalf("hull = %q, want %q", got, want)
	}
	if !h.MustContain(a, nil) || !h.MustContain(b, nil) {
		t.Fatal("hull must contain operands")
	}
}

func TestSectionDimMismatchConservative(t *testing.T) {
	a := FullSection(1)
	b := FullSection(2)
	if !a.MayOverlap(b, nil) {
		t.Fatal("dimension mismatch must be conservative for overlap")
	}
	if a.MustContain(b, nil) {
		t.Fatal("dimension mismatch must not prove containment")
	}
}

// enumerateRange lists the concrete indices of a constant range.
func enumerateRange(r Range, env map[string]int64) ([]int64, bool) {
	lo, ok1 := r.Lo.Eval(env)
	hi, ok2 := r.Hi.Eval(env)
	if !ok1 || !ok2 {
		return nil, false
	}
	var out []int64
	for v := lo; v <= hi; v += r.Step {
		out = append(out, v)
	}
	return out, true
}

func randomConstRange(r *rand.Rand) Range {
	lo := r.Int63n(30)
	hi := lo + r.Int63n(20)
	step := int64(1 + r.Intn(3))
	return Range{Lo: Const(lo), Hi: Const(hi), Step: step}
}

// Property: MayOverlap is sound — whenever two constant ranges share a
// concrete index, MayOverlap must return true.
func TestQuickOverlapSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomConstRange(r), randomConstRange(r)
		ia, _ := enumerateRange(a, nil)
		ib, _ := enumerateRange(b, nil)
		set := map[int64]bool{}
		for _, x := range ia {
			set[x] = true
		}
		shared := false
		for _, x := range ib {
			if set[x] {
				shared = true
				break
			}
		}
		if shared && !a.MayOverlap(b, nil) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MustContain is sound — if it returns true on constant ranges,
// every index of the inner range is in the outer.
func TestQuickContainSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomConstRange(r), randomConstRange(r)
		if !a.MustContain(b, nil) {
			return true // nothing claimed
		}
		ia, _ := enumerateRange(a, nil)
		ib, _ := enumerateRange(b, nil)
		set := map[int64]bool{}
		for _, x := range ia {
			set[x] = true
		}
		for _, x := range ib {
			if !set[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: overlap is symmetric.
func TestQuickOverlapSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomConstRange(r), randomConstRange(r)
		return a.MayOverlap(b, nil) == b.MayOverlap(a, nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hull contains both operands (constant case).
func TestQuickHullContains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomConstRange(r), randomConstRange(r)
		a.Step, b.Step = 1, 1
		h := a.Hull(b, nil)
		return h.MustContain(a, nil) && h.MustContain(b, nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Expand soundness — the expanded section contains the point
// section at every concrete value of the expanded variable.
func TestQuickExpandSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// point subscript: a*i + b (a in [-3,3]\{?}, b in [-10,10])
		a := r.Int63n(7) - 3
		b := r.Int63n(21) - 10
		p := PointRange(Var("i").MulConst(a).Add(Const(b)))
		lo := r.Int63n(5)
		hi := lo + r.Int63n(10)
		e := p.Expand("i", Const(lo), Const(hi))
		// every instantiation must fall inside the expanded bounds
		for i := lo; i <= hi; i++ {
			v := a*i + b
			eb := e.boundsOf(nil)
			if !eb.Known {
				return true // conservative: unknown bounds never claim containment
			}
			if v < eb.Lo || v > eb.Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Subst then Expand commutes with direct evaluation for
// sections: expanding a 2-D point section over two nested variables
// contains every concrete element.
func TestQuickSectionExpandNested(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// subscripts: (i + c1, j + c2)
		c1 := r.Int63n(9) - 4
		c2 := r.Int63n(9) - 4
		s := PointSection([]Expr{
			Var("i").Add(Const(c1)),
			Var("j").Add(Const(c2)),
		})
		jlo, jhi := int64(0), r.Int63n(6)+1
		ilo, ihi := int64(1), r.Int63n(6)+2
		exp := s.Expand("j", Const(jlo), Const(jhi)).Expand("i", Const(ilo), Const(ihi))
		for i := ilo; i <= ihi; i++ {
			for j := jlo; j <= jhi; j++ {
				pt := PointSection([]Expr{Const(i + c1), Const(j + c2)})
				if !exp.MayOverlap(pt, nil) {
					return false // containment implies at least overlap
				}
				if !exp.MustContain(pt, nil) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
