package symexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstArithmetic(t *testing.T) {
	a := Const(3)
	b := Const(4)
	if v, ok := a.Add(b).IsConst(); !ok || v != 7 {
		t.Fatalf("3+4 = %v, %v", v, ok)
	}
	if v, ok := a.Sub(b).IsConst(); !ok || v != -1 {
		t.Fatalf("3-4 = %v, %v", v, ok)
	}
	if v, ok := a.Mul(b).IsConst(); !ok || v != 12 {
		t.Fatalf("3*4 = %v, %v", v, ok)
	}
}

func TestVarArithmetic(t *testing.T) {
	i := Var("i")
	e := i.MulConst(2).Add(Const(3)) // 2i+3
	if got := e.String(); got != "2*i+3" {
		t.Fatalf("String = %q", got)
	}
	v, ok := e.Eval(map[string]int64{"i": 5})
	if !ok || v != 13 {
		t.Fatalf("eval 2i+3 at i=5 = %v, %v", v, ok)
	}
	// cancellation: (2i+3) - 2i = 3
	d := e.Sub(i.MulConst(2))
	if c, ok := d.IsConst(); !ok || c != 3 {
		t.Fatalf("cancellation failed: %v", d)
	}
}

func TestUnknownPropagation(t *testing.T) {
	u := Unknown()
	i := Var("i")
	if !u.Add(i).IsUnknown() || !i.Mul(Var("j")).IsUnknown() {
		t.Fatal("unknown should propagate")
	}
	if _, ok := u.Eval(map[string]int64{}); ok {
		t.Fatal("unknown must not evaluate")
	}
	if !Unknown().Equal(Unknown()) {
		t.Fatal("two unknowns compare equal")
	}
}

func TestSubst(t *testing.T) {
	// (3i + j + 1)[i := 2k+1] = 6k + j + 4
	e := Var("i").MulConst(3).Add(Var("j")).Add(Const(1))
	s := e.Subst("i", Var("k").MulConst(2).Add(Const(1)))
	want := Var("k").MulConst(6).Add(Var("j")).Add(Const(4))
	if !s.Equal(want) {
		t.Fatalf("subst = %v, want %v", s, want)
	}
	// substituting an absent variable is identity
	if !e.Subst("z", Const(9)).Equal(e) {
		t.Fatal("subst of absent var changed expr")
	}
}

func TestBoundsOf(t *testing.T) {
	env := Env{"i": {Lo: 0, Hi: 9, Known: true}}
	e := Var("i").MulConst(-2).Add(Const(5)) // -2i+5 over i in [0,9] -> [-13, 5]
	b := e.BoundsOf(env)
	if !b.Known || b.Lo != -13 || b.Hi != 5 {
		t.Fatalf("bounds = %+v", b)
	}
	if Var("q").BoundsOf(env).Known {
		t.Fatal("unbound var must yield unknown bounds")
	}
}

// randomExpr builds a random affine expression over vars i,j,k with small
// coefficients, for property testing.
func randomExpr(r *rand.Rand) Expr {
	e := Const(r.Int63n(21) - 10)
	for _, v := range []string{"i", "j", "k"} {
		if r.Intn(2) == 1 {
			e = e.Add(Var(v).MulConst(r.Int63n(9) - 4))
		}
	}
	return e
}

func randomEnvVals(r *rand.Rand) map[string]int64 {
	return map[string]int64{
		"i": r.Int63n(41) - 20,
		"j": r.Int63n(41) - 20,
		"k": r.Int63n(41) - 20,
	}
}

func TestQuickAddEvalHomomorphism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomExpr(r), randomExpr(r)
		env := randomEnvVals(r)
		va, _ := a.Eval(env)
		vb, _ := b.Eval(env)
		vs, ok := a.Add(b).Eval(env)
		return ok && vs == va+vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubEvalHomomorphism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomExpr(r), randomExpr(r)
		env := randomEnvVals(r)
		va, _ := a.Eval(env)
		vb, _ := b.Eval(env)
		vs, ok := a.Sub(b).Eval(env)
		return ok && vs == va-vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubstEval(t *testing.T) {
	// eval(e[i:=g], env) == eval(e, env[i:=eval(g, env)])
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e, g := randomExpr(r), randomExpr(r)
		env := randomEnvVals(r)
		vg, _ := g.Eval(env)
		env2 := map[string]int64{"i": vg, "j": env["j"], "k": env["k"]}
		lhs, ok1 := e.Subst("i", g).Eval(env)
		rhs, ok2 := e.Eval(env2)
		return ok1 && ok2 && lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoundsSound(t *testing.T) {
	// any concrete evaluation lies within BoundsOf for the interval env
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r)
		env := Env{
			"i": {Lo: -20, Hi: 20, Known: true},
			"j": {Lo: -20, Hi: 20, Known: true},
			"k": {Lo: -20, Hi: 20, Known: true},
		}
		b := e.BoundsOf(env)
		if !b.Known {
			return false
		}
		vals := randomEnvVals(r)
		v, ok := e.Eval(vals)
		return ok && b.Lo <= v && v <= b.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Const(0), "0"},
		{Const(-7), "-7"},
		{Var("i"), "i"},
		{Var("i").Neg(), "-i"},
		{Var("i").Add(Var("j")), "i+j"},
		{Var("i").Sub(Var("j")).Add(Const(-2)), "i-j-2"},
		{Unknown(), "?"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.e, got, c.want)
		}
	}
}
