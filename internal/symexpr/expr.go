// Package symexpr implements symbolic affine expressions and bounded
// regular array sections, the value domain used by the compiler's array
// data-flow analysis.
//
// An Expr is an affine combination c0 + c1*v1 + c2*v2 + ... of named
// symbolic variables (loop indices and program parameters). Expressions
// that cannot be kept affine (for example a product of two variables, or
// a value loaded through an unanalyzable subscript) collapse to the
// distinguished "unknown" expression, which every analysis must treat
// conservatively.
//
// A Section is a bounded regular section descriptor: one triplet
// [lo : hi : step] per array dimension, with affine bounds. Sections
// support the conservative may-overlap and must-contain queries required
// for stale-reference detection.
package symexpr

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an affine symbolic expression: Const + Σ Coeffs[v]·v.
// The zero value is the constant 0. Expressions are immutable once built;
// all operations return new values.
type Expr struct {
	unknown bool
	c0      int64
	coeffs  map[string]int64 // never contains zero-valued entries
}

// Unknown is the top element of the expression lattice: a value about which
// nothing is known. Any arithmetic involving Unknown yields Unknown.
func Unknown() Expr { return Expr{unknown: true} }

// Const returns the constant expression c.
func Const(c int64) Expr { return Expr{c0: c} }

// Var returns the expression consisting of the single variable v.
func Var(v string) Expr { return Expr{coeffs: map[string]int64{v: 1}} }

// IsUnknown reports whether e is the unknown (top) expression.
func (e Expr) IsUnknown() bool { return e.unknown }

// IsConst reports whether e is a known constant, and returns its value.
func (e Expr) IsConst() (int64, bool) {
	if e.unknown || len(e.coeffs) != 0 {
		return 0, false
	}
	return e.c0, true
}

// ConstPart returns the constant term of e. Meaningless for Unknown.
func (e Expr) ConstPart() int64 { return e.c0 }

// Coeff returns the coefficient of variable v in e.
func (e Expr) Coeff(v string) int64 { return e.coeffs[v] }

// Vars returns the variables appearing in e with nonzero coefficient,
// in sorted order.
func (e Expr) Vars() []string {
	vs := make([]string, 0, len(e.coeffs))
	for v := range e.coeffs {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// HasVar reports whether v appears in e.
func (e Expr) HasVar(v string) bool { return e.coeffs[v] != 0 }

func (e Expr) clone() Expr {
	c := Expr{unknown: e.unknown, c0: e.c0}
	if len(e.coeffs) > 0 {
		c.coeffs = make(map[string]int64, len(e.coeffs))
		for v, k := range e.coeffs {
			c.coeffs[v] = k
		}
	}
	return c
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	if e.unknown || o.unknown {
		return Unknown()
	}
	r := e.clone()
	r.c0 += o.c0
	for v, k := range o.coeffs {
		nk := r.coeffs[v] + k
		if r.coeffs == nil {
			r.coeffs = make(map[string]int64)
		}
		if nk == 0 {
			delete(r.coeffs, v)
		} else {
			r.coeffs[v] = nk
		}
	}
	if len(r.coeffs) == 0 {
		r.coeffs = nil
	}
	return r
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Neg()) }

// Neg returns -e.
func (e Expr) Neg() Expr {
	if e.unknown {
		return Unknown()
	}
	r := Expr{c0: -e.c0}
	if len(e.coeffs) > 0 {
		r.coeffs = make(map[string]int64, len(e.coeffs))
		for v, k := range e.coeffs {
			r.coeffs[v] = -k
		}
	}
	return r
}

// MulConst returns e·c.
func (e Expr) MulConst(c int64) Expr {
	if e.unknown {
		return Unknown()
	}
	if c == 0 {
		return Const(0)
	}
	r := Expr{c0: e.c0 * c}
	if len(e.coeffs) > 0 {
		r.coeffs = make(map[string]int64, len(e.coeffs))
		for v, k := range e.coeffs {
			r.coeffs[v] = k * c
		}
	}
	return r
}

// Mul returns e·o when the product is affine (at least one side constant);
// otherwise it returns Unknown.
func (e Expr) Mul(o Expr) Expr {
	if e.unknown || o.unknown {
		return Unknown()
	}
	if c, ok := e.IsConst(); ok {
		return o.MulConst(c)
	}
	if c, ok := o.IsConst(); ok {
		return e.MulConst(c)
	}
	return Unknown()
}

// Equal reports structural equality of the two expressions. Two Unknown
// expressions compare equal (both are the same lattice element).
func (e Expr) Equal(o Expr) bool {
	if e.unknown || o.unknown {
		return e.unknown == o.unknown
	}
	if e.c0 != o.c0 || len(e.coeffs) != len(o.coeffs) {
		return false
	}
	for v, k := range e.coeffs {
		if o.coeffs[v] != k {
			return false
		}
	}
	return true
}

// Subst substitutes expression val for every occurrence of variable v.
func (e Expr) Subst(v string, val Expr) Expr {
	if e.unknown {
		return Unknown()
	}
	k, ok := e.coeffs[v]
	if !ok {
		return e
	}
	r := e.clone()
	delete(r.coeffs, v)
	if len(r.coeffs) == 0 {
		r.coeffs = nil
	}
	return r.Add(val.MulConst(k))
}

// Eval evaluates e under the variable binding env. It reports failure if e
// is Unknown or mentions an unbound variable.
func (e Expr) Eval(env map[string]int64) (int64, bool) {
	if e.unknown {
		return 0, false
	}
	r := e.c0
	for v, k := range e.coeffs {
		x, ok := env[v]
		if !ok {
			return 0, false
		}
		r += k * x
	}
	return r, true
}

// String renders e in a deterministic human-readable form.
func (e Expr) String() string {
	if e.unknown {
		return "?"
	}
	var b strings.Builder
	first := true
	for _, v := range e.Vars() {
		k := e.coeffs[v]
		switch {
		case first && k == 1:
			b.WriteString(v)
		case first && k == -1:
			b.WriteString("-" + v)
		case first:
			fmt.Fprintf(&b, "%d*%s", k, v)
		case k == 1:
			b.WriteString("+" + v)
		case k == -1:
			b.WriteString("-" + v)
		case k > 0:
			fmt.Fprintf(&b, "+%d*%s", k, v)
		default:
			fmt.Fprintf(&b, "-%d*%s", -k, v)
		}
		first = false
	}
	if first {
		fmt.Fprintf(&b, "%d", e.c0)
	} else if e.c0 > 0 {
		fmt.Fprintf(&b, "+%d", e.c0)
	} else if e.c0 < 0 {
		fmt.Fprintf(&b, "%d", e.c0)
	}
	return b.String()
}

// Bounds describes a known inclusive integer interval for a symbolic value.
type Bounds struct {
	Lo, Hi int64
	Known  bool
}

// ExactBounds returns the degenerate interval [v, v].
func ExactBounds(v int64) Bounds { return Bounds{Lo: v, Hi: v, Known: true} }

// Env maps variable names to their known value intervals. It is the context
// under which expression bounds are computed (loop index ranges, known
// parameter values).
type Env map[string]Bounds

// BoundsOf computes a conservative interval for e under env. If e is
// Unknown, or any variable lacks bounds, the result is not Known.
func (e Expr) BoundsOf(env Env) Bounds {
	if e.unknown {
		return Bounds{}
	}
	lo, hi := e.c0, e.c0
	for v, k := range e.coeffs {
		b, ok := env[v]
		if !ok || !b.Known {
			return Bounds{}
		}
		if k >= 0 {
			lo += k * b.Lo
			hi += k * b.Hi
		} else {
			lo += k * b.Hi
			hi += k * b.Lo
		}
	}
	return Bounds{Lo: lo, Hi: hi, Known: true}
}
