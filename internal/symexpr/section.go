package symexpr

import (
	"fmt"
	"strings"
)

// Range is one dimension of a bounded regular section: the index set
// {Lo, Lo+Step, ..., Hi} (Step >= 1; Step is a concrete integer because
// the analyses only ever generate literal strides). A Range whose bounds
// are Unknown denotes the whole dimension.
type Range struct {
	Lo, Hi Expr
	Step   int64
}

// PointRange returns the single-index range [e : e : 1].
func PointRange(e Expr) Range { return Range{Lo: e, Hi: e, Step: 1} }

// FullRange returns the range covering an entire dimension of unknown extent.
func FullRange() Range { return Range{Lo: Unknown(), Hi: Unknown(), Step: 1} }

// IsFull reports whether r covers the whole dimension (unknown bounds).
func (r Range) IsFull() bool { return r.Lo.IsUnknown() || r.Hi.IsUnknown() }

// IsPoint reports whether r denotes exactly one index.
func (r Range) IsPoint() bool { return !r.IsFull() && r.Lo.Equal(r.Hi) }

func (r Range) String() string {
	if r.IsPoint() {
		return r.Lo.String()
	}
	if r.Step != 1 {
		return fmt.Sprintf("%s:%s:%d", r.Lo, r.Hi, r.Step)
	}
	return fmt.Sprintf("%s:%s", r.Lo, r.Hi)
}

// Subst substitutes val for variable v in the range bounds.
func (r Range) Subst(v string, val Expr) Range {
	return Range{Lo: r.Lo.Subst(v, val), Hi: r.Hi.Subst(v, val), Step: r.Step}
}

// Expand widens r so that it covers all values the bounds can take while
// variable v ranges over [lo, hi]: the standard loop-summarization step that
// turns a per-iteration reference into a per-loop section.
func (r Range) Expand(v string, lo, hi Expr) Range {
	out := r
	if r.Lo.HasVar(v) {
		if k := r.Lo.Coeff(v); k > 0 {
			out.Lo = r.Lo.Subst(v, lo)
		} else {
			out.Lo = r.Lo.Subst(v, hi)
		}
	}
	if r.Hi.HasVar(v) {
		if k := r.Hi.Coeff(v); k > 0 {
			out.Hi = r.Hi.Subst(v, hi)
		} else {
			out.Hi = r.Hi.Subst(v, lo)
		}
	}
	// Expansion over a loop index generally destroys stride regularity
	// unless the range was a point with unit-coefficient dependence.
	if r.IsPoint() && absInt64(r.Lo.Coeff(v)) > 1 {
		out.Step = absInt64(r.Lo.Coeff(v))
	} else if !r.IsPoint() && (r.Lo.HasVar(v) || r.Hi.HasVar(v)) {
		out.Step = 1
	}
	return out
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// boundsOf computes the conservative interval spanned by the whole range:
// from the least value Lo can take to the greatest value Hi can take.
func (r Range) boundsOf(env Env) Bounds {
	lb := r.Lo.BoundsOf(env)
	hb := r.Hi.BoundsOf(env)
	if !lb.Known || !hb.Known {
		return Bounds{}
	}
	return Bounds{Lo: lb.Lo, Hi: hb.Hi, Known: true}
}

// MayOverlap conservatively decides whether the two ranges can share an
// index under env. It returns false only when the ranges are provably
// disjoint; any uncertainty yields true.
func (r Range) MayOverlap(o Range, env Env) bool {
	rb := r.boundsOf(env)
	ob := o.boundsOf(env)
	if !rb.Known || !ob.Known {
		return true
	}
	if rb.Hi < ob.Lo || ob.Hi < rb.Lo {
		return false
	}
	// Interval overlap exists; try a stride-based disproof for the common
	// constant-offset same-stride case (e.g. 2i vs 2i+1).
	if r.Step == o.Step && r.Step > 1 {
		d := r.Lo.Sub(o.Lo)
		if c, ok := d.IsConst(); ok && c%r.Step != 0 {
			return false
		}
	}
	return true
}

// MustContain conservatively decides whether r certainly contains every
// index of o under env. It returns true only when containment is provable.
func (r Range) MustContain(o Range, env Env) bool {
	if r.IsFull() {
		// Unknown bounds: cannot prove containment of anything except by
		// structural identity, handled below.
		return rangeIdentical(r, o)
	}
	if rangeIdentical(r, o) {
		return true
	}
	if r.Step != 1 {
		return false
	}
	rb := r.boundsOf(env)
	ob := o.boundsOf(env)
	if rb.Known && ob.Known && rb.Lo <= ob.Lo && ob.Hi <= rb.Hi {
		return true
	}
	// Symbolic proof: r.Lo <= o.Lo and o.Hi <= r.Hi via difference bounds.
	if diffNonNegative(o.Lo.Sub(r.Lo), env) && diffNonNegative(r.Hi.Sub(o.Hi), env) {
		return true
	}
	return false
}

// rangeIdentical reports whether two ranges denote provably the same
// index set. Unknown bounds denote *some* unknown index set, not the full
// dimension, so two Unknown-bounded ranges are never provably identical —
// treating them as equal would let one unanalyzable subscript "cover"
// another that reads a different element (a must-analysis soundness bug).
func rangeIdentical(a, b Range) bool {
	if a.Lo.IsUnknown() || a.Hi.IsUnknown() || b.Lo.IsUnknown() || b.Hi.IsUnknown() {
		return false
	}
	return a.Lo.Equal(b.Lo) && a.Hi.Equal(b.Hi) && a.Step == b.Step
}

// diffNonNegative reports whether d >= 0 is provable under env.
func diffNonNegative(d Expr, env Env) bool {
	b := d.BoundsOf(env)
	return b.Known && b.Lo >= 0
}

// Hull returns the smallest regular range covering both r and o (a bounding
// approximation: the union may be overapproximated).
func (r Range) Hull(o Range, env Env) Range {
	if r.IsFull() || o.IsFull() {
		return FullRange()
	}
	out := Range{Step: 1}
	if r.Step == o.Step {
		out.Step = r.Step
	}
	out.Lo = minExpr(r.Lo, o.Lo, env)
	out.Hi = maxExpr(r.Hi, o.Hi, env)
	return out
}

func minExpr(a, b Expr, env Env) Expr {
	if a.Equal(b) {
		return a
	}
	if diffNonNegative(b.Sub(a), env) {
		return a
	}
	if diffNonNegative(a.Sub(b), env) {
		return b
	}
	return Unknown()
}

func maxExpr(a, b Expr, env Env) Expr {
	if a.Equal(b) {
		return a
	}
	if diffNonNegative(a.Sub(b), env) {
		return a
	}
	if diffNonNegative(b.Sub(a), env) {
		return b
	}
	return Unknown()
}

// Section is a bounded regular section over the dimensions of one array:
// the cross product of its per-dimension ranges.
type Section struct {
	Dims []Range
}

// PointSection builds the section selecting exactly the element with the
// given subscripts.
func PointSection(subs []Expr) Section {
	dims := make([]Range, len(subs))
	for i, s := range subs {
		dims[i] = PointRange(s)
	}
	return Section{Dims: dims}
}

// FullSection returns the section covering an entire n-dimensional array.
func FullSection(n int) Section {
	dims := make([]Range, n)
	for i := range dims {
		dims[i] = FullRange()
	}
	return Section{Dims: dims}
}

func (s Section) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = "[" + d.String() + "]"
	}
	return strings.Join(parts, "")
}

// Subst substitutes val for variable v in every dimension.
func (s Section) Subst(v string, val Expr) Section {
	dims := make([]Range, len(s.Dims))
	for i, d := range s.Dims {
		dims[i] = d.Subst(v, val)
	}
	return Section{Dims: dims}
}

// Expand widens the section over loop variable v in [lo, hi].
func (s Section) Expand(v string, lo, hi Expr) Section {
	dims := make([]Range, len(s.Dims))
	for i, d := range s.Dims {
		dims[i] = d.Expand(v, lo, hi)
	}
	return Section{Dims: dims}
}

// MayOverlap conservatively decides whether two sections of the same array
// can share an element. Sections overlap only if every dimension overlaps.
func (s Section) MayOverlap(o Section, env Env) bool {
	if len(s.Dims) != len(o.Dims) {
		// Shape confusion (e.g. via procedure reshaping): be conservative.
		return true
	}
	for i := range s.Dims {
		if !s.Dims[i].MayOverlap(o.Dims[i], env) {
			return false
		}
	}
	return true
}

// MustContain reports whether s provably contains every element of o.
func (s Section) MustContain(o Section, env Env) bool {
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if !s.Dims[i].MustContain(o.Dims[i], env) {
			return false
		}
	}
	return true
}

// Hull returns a regular section covering both s and o.
func (s Section) Hull(o Section, env Env) Section {
	if len(s.Dims) != len(o.Dims) {
		n := len(s.Dims)
		if len(o.Dims) > n {
			n = len(o.Dims)
		}
		return FullSection(n)
	}
	dims := make([]Range, len(s.Dims))
	for i := range s.Dims {
		dims[i] = s.Dims[i].Hull(o.Dims[i], env)
	}
	return Section{Dims: dims}
}
