// Package memory models the shared main memory: a word-addressed float64
// store with per-word provenance (last writer and last write epoch). The
// provenance doubles as the simulator's staleness oracle: the memory is
// always authoritative under write-through, so any cached value that
// disagrees with it (and predates its last write) is stale.
package memory

import (
	"fmt"

	"repro/internal/prog"
)

// Memory is the simulated shared main memory.
type Memory struct {
	words          []float64
	lastWriteEpoch []int64
	lastWriter     []int32
}

// New creates a zeroed memory of the given extent.
func New(words int64) *Memory {
	m := &Memory{
		words:          make([]float64, words),
		lastWriteEpoch: make([]int64, words),
		lastWriter:     make([]int32, words),
	}
	for i := range m.lastWriter {
		m.lastWriter[i] = -1 // written by "program load"
	}
	return m
}

// Size returns the memory extent in words.
func (m *Memory) Size() int64 { return int64(len(m.words)) }

// Read returns the current (authoritative) value of a word.
func (m *Memory) Read(addr prog.Word) float64 {
	return m.words[addr]
}

// Words exposes the authoritative word store, read-only by contract. The
// stream cursors use it to inline the staleness-oracle compare on cache
// hits (CheckFresh stays the panic path, with the full diagnostic).
func (m *Memory) Words() []float64 { return m.words }

// Write stores a value with provenance.
func (m *Memory) Write(addr prog.Word, v float64, proc int, epoch int64) {
	m.words[addr] = v
	m.lastWriteEpoch[addr] = epoch
	m.lastWriter[addr] = int32(proc)
}

// LastWriteEpoch returns the epoch of the most recent write to addr
// (0 if never written since load).
func (m *Memory) LastWriteEpoch(addr prog.Word) int64 {
	return m.lastWriteEpoch[addr]
}

// LastWriter returns the processor that last wrote addr (-1 = initial).
func (m *Memory) LastWriter(addr prog.Word) int {
	return int(m.lastWriter[addr])
}

// InitWord sets a word's initial value without provenance (program load).
func (m *Memory) InitWord(addr prog.Word, v float64) {
	m.words[addr] = v
}

// CheckFresh panics unless the supplied value matches the authoritative
// word. It is the staleness oracle used to verify that regular reads and
// Time-Read hits never return stale data; a failure is a compiler-marking
// or protocol soundness bug, which must abort the experiment rather than
// silently corrupt it.
func (m *Memory) CheckFresh(addr prog.Word, got float64, proc int, context string) {
	want := m.words[addr]
	if got != want {
		panic(fmt.Sprintf("memory: STALE READ by P%d at word %d: got %v, want %v (%s; last write by P%d at epoch %d)",
			proc, addr, got, want, context, m.LastWriter(addr), m.LastWriteEpoch(addr)))
	}
}

// Snapshot copies the current contents (for end-of-run comparisons).
func (m *Memory) Snapshot() []float64 {
	out := make([]float64, len(m.words))
	copy(out, m.words)
	return out
}
