package memory

import (
	"strings"
	"testing"
)

func TestReadWriteProvenance(t *testing.T) {
	m := New(16)
	if m.Size() != 16 {
		t.Fatalf("size = %d", m.Size())
	}
	if m.LastWriter(3) != -1 {
		t.Fatal("initial writer must be -1 (program load)")
	}
	m.Write(3, 2.5, 7, 42)
	if m.Read(3) != 2.5 || m.LastWriter(3) != 7 || m.LastWriteEpoch(3) != 42 {
		t.Fatalf("provenance: v=%v w=%d e=%d", m.Read(3), m.LastWriter(3), m.LastWriteEpoch(3))
	}
}

func TestInitWordHasNoProvenance(t *testing.T) {
	m := New(8)
	m.InitWord(2, 1.5)
	if m.Read(2) != 1.5 {
		t.Fatal("init value")
	}
	if m.LastWriteEpoch(2) != 0 || m.LastWriter(2) != -1 {
		t.Fatal("InitWord must not record a write")
	}
}

func TestCheckFreshPassesOnMatch(t *testing.T) {
	m := New(8)
	m.Write(1, 3.0, 0, 1)
	m.CheckFresh(1, 3.0, 2, "test") // must not panic
}

func TestCheckFreshPanicsOnStale(t *testing.T) {
	m := New(8)
	m.Write(1, 3.0, 0, 5)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CheckFresh must panic on a stale value")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "STALE READ") {
			t.Fatalf("panic payload: %v", r)
		}
	}()
	m.CheckFresh(1, 2.0, 3, "test")
}

func TestSnapshotIsACopy(t *testing.T) {
	m := New(4)
	m.Write(0, 1.0, 0, 1)
	snap := m.Snapshot()
	m.Write(0, 2.0, 0, 2)
	if snap[0] != 1.0 {
		t.Fatal("snapshot must not alias live memory")
	}
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d", len(snap))
	}
}
