package parallelize

import (
	"strings"
	"testing"

	"repro/internal/pfl"
)

func runPass(t *testing.T, src string) (*pfl.Program, *Report) {
	t.Helper()
	p, err := pfl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pfl.Check(p); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, rep
}

// decisions maps loop variable -> parallelized?
func decisions(rep *Report) map[string]bool {
	m := map[string]bool{}
	for _, d := range rep.Decisions {
		m[d.Var] = d.Parallel
	}
	return m
}

func TestIndependentLoopParallelizes(t *testing.T) {
	p, rep := runPass(t, `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  for i = 0 to n-1 {
    A[i] = B[i] * 2.0
  }
}
`)
	if !decisions(rep)["i"] {
		t.Fatalf("independent loop stayed serial:\n%s", rep)
	}
	if _, ok := p.Procs[0].Body.Stmts[0].(*pfl.DoallStmt); !ok {
		t.Fatal("AST not rewritten to doall")
	}
}

func TestRecurrenceStaysSerial(t *testing.T) {
	_, rep := runPass(t, `
program p
param n = 16
array A[n]
proc main() {
  A[0] = 1.0
  for i = 1 to n-1 {
    A[i] = A[i-1] * 0.5
  }
}
`)
	if decisions(rep)["i"] {
		t.Fatalf("loop-carried recurrence was parallelized:\n%s", rep)
	}
}

func TestStencilReadsDoNotBlock(t *testing.T) {
	// B is written at [i]; A is only read: the A[i-1]/A[i+1] stencil reads
	// never create a cross-iteration dependence.
	_, rep := runPass(t, `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  for i = 1 to n-2 {
    B[i] = A[i-1] + A[i+1]
  }
}
`)
	if !decisions(rep)["i"] {
		t.Fatalf("read-only stencil blocked parallelization:\n%s", rep)
	}
}

func TestWriteReadOverlapStaysSerial(t *testing.T) {
	// writes B[i], reads B[i+1]: WAR across iterations.
	_, rep := runPass(t, `
program p
param n = 16
array B[n]
proc main() {
  for i = 0 to n-2 {
    B[i] = B[i+1] * 0.5
  }
}
`)
	if decisions(rep)["i"] {
		t.Fatalf("cross-iteration WAR was parallelized:\n%s", rep)
	}
}

func TestStridedAccessesParallelize(t *testing.T) {
	// A[2i] written, A[2i+1] read: stride 2, offsets {0,1}: disjoint.
	_, rep := runPass(t, `
program p
param n = 16
array A[2*n]
proc main() {
  for i = 0 to n-1 {
    A[2*i] = A[2*i+1] + 1.0
  }
}
`)
	if !decisions(rep)["i"] {
		t.Fatalf("strided disjoint accesses stayed serial:\n%s", rep)
	}
}

func TestScalarWriteStaysSerial(t *testing.T) {
	// A plain scalar overwrite (not a reduction) serializes the loop.
	_, rep := runPass(t, `
program p
param n = 16
scalar s
array A[n]
proc main() {
  for i = 0 to n-1 {
    s = A[i] * 2.0
  }
}
`)
	d := decisions(rep)
	if d["i"] {
		t.Fatalf("scalar overwrite was parallelized:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "scalar") {
		t.Fatalf("reason should mention the scalar:\n%s", rep)
	}
}

func TestInnerLoopExpansion(t *testing.T) {
	// Row-parallel 2-D sweep: dim 0 separates; the inner j loop spans dim 1.
	p, rep := runPass(t, `
program p
param n = 8
array A[n][n]
array B[n][n]
proc main() {
  for i = 0 to n-1 {
    for j = 0 to n-1 {
      A[i][j] = B[i][j] + B[i][(j+1) % n]
    }
  }
}
`)
	d := decisions(rep)
	if !d["i"] {
		t.Fatalf("row-parallel sweep stayed serial:\n%s", rep)
	}
	// The inner loop must remain serial inside the new doall.
	da := p.Procs[0].Body.Stmts[0].(*pfl.DoallStmt)
	if _, ok := da.Body.Stmts[0].(*pfl.ForStmt); !ok {
		t.Fatal("inner loop should stay serial inside the doall")
	}
}

func TestColumnWriteBlocksRowLoop(t *testing.T) {
	// writes A[j][i]: dim1 separates by i. Should parallelize on dim 1.
	_, rep := runPass(t, `
program p
param n = 8
array A[n][n]
proc main() {
  for i = 0 to n-1 {
    for j = 0 to n-1 {
      A[j][i] = 1.0
    }
  }
}
`)
	if !decisions(rep)["i"] {
		t.Fatalf("column-indexed write should parallelize via dim 1:\n%s", rep)
	}
}

func TestNonAffineWriteStaysSerial(t *testing.T) {
	_, rep := runPass(t, `
program p
param n = 16
array A[n]
array IDX[n]
proc main() {
  for i = 0 to n-1 {
    A[IDX[i]] = 1.0
  }
}
`)
	if decisions(rep)["i"] {
		t.Fatalf("non-affine write was parallelized:\n%s", rep)
	}
}

func TestCallBlocksParallelization(t *testing.T) {
	_, rep := runPass(t, `
program p
param n = 8
array A[n]
proc main() {
  for t = 0 to 3 {
    call f(A)
  }
}
proc f(X[]) {
  doall i = 0 to n-1 { X[i] = X[i] + 1.0 }
}
`)
	if decisions(rep)["t"] {
		t.Fatalf("loop with a call was parallelized:\n%s", rep)
	}
}

func TestTimeLoopWithCrossEpochFlowStaysSerial(t *testing.T) {
	// The outer time loop carries A across iterations; only it must stay
	// serial while the inner sweep parallelizes.
	p, rep := runPass(t, `
program p
param n = 8
array A[n]
array B[n]
proc main() {
  for t = 0 to 3 {
    for i = 1 to n-2 {
      B[i] = A[i-1] + A[i+1]
    }
    for i = 1 to n-2 {
      A[i] = B[i]
    }
  }
}
`)
	d := decisions(rep)
	if d["t"] {
		t.Fatalf("time loop was parallelized:\n%s", rep)
	}
	if !d["i"] {
		t.Fatalf("inner sweeps should parallelize:\n%s", rep)
	}
	// After rewrite the time loop contains two doalls.
	tl := p.Procs[0].Body.Stmts[0].(*pfl.ForStmt)
	for k, s := range tl.Body.Stmts {
		if _, ok := s.(*pfl.DoallStmt); !ok {
			t.Fatalf("time-loop stmt %d is %T, want doall", k, s)
		}
	}
}

func TestReductionRecognition(t *testing.T) {
	p, rep := runPass(t, `
program p
param n = 16
scalar sum = 0.0
array A[n]
proc main() {
  for i = 0 to n-1 {
    sum = sum + A[i]
  }
}
`)
	d := rep.Decisions[0]
	if !d.Parallel {
		t.Fatalf("reduction loop stayed serial:\n%s", rep)
	}
	if len(d.Reductions) != 1 || d.Reductions[0] != "sum" {
		t.Fatalf("reductions = %v", d.Reductions)
	}
	// The accumulation must now sit inside a critical section.
	da := p.Procs[0].Body.Stmts[0].(*pfl.DoallStmt)
	if _, ok := da.Body.Stmts[0].(*pfl.CriticalStmt); !ok {
		t.Fatalf("accumulation not wrapped: %T", da.Body.Stmts[0])
	}
}

func TestReductionWithArrayWrites(t *testing.T) {
	_, rep := runPass(t, `
program p
param n = 16
scalar norm = 0.0
array A[n]
array B[n]
proc main() {
  for i = 0 to n-1 {
    B[i] = A[i] * A[i]
    norm = norm + B[i]
  }
}
`)
	d := rep.Decisions[0]
	if !d.Parallel || len(d.Reductions) != 1 {
		t.Fatalf("mixed write+reduction loop: %+v\n%s", d, rep)
	}
}

func TestNonReductionScalarUseStaysSerial(t *testing.T) {
	// s is read by another statement: not a pure reduction.
	_, rep := runPass(t, `
program p
param n = 16
scalar s = 0.0
array A[n]
proc main() {
  for i = 0 to n-1 {
    A[i] = s * 2.0
    s = s + 1.0
  }
}
`)
	if rep.Decisions[0].Parallel {
		t.Fatalf("scalar flowing into the body was parallelized:\n%s", rep)
	}
}

func TestSelfReferencingRHSStaysSerial(t *testing.T) {
	_, rep := runPass(t, `
program p
param n = 16
scalar s = 1.0
array A[n]
proc main() {
  for i = 0 to n-1 {
    s = s + s * 0.1
    A[i] = 0.0
  }
}
`)
	if rep.Decisions[0].Parallel {
		t.Fatalf("non-linear scalar update was parallelized:\n%s", rep)
	}
}

func TestProductReduction(t *testing.T) {
	_, rep := runPass(t, `
program p
param n = 10
scalar prod = 1.0
array A[n]
proc main() {
  for i = 0 to n-1 {
    prod = prod * A[i]
  }
}
`)
	d := rep.Decisions[0]
	if !d.Parallel || len(d.Reductions) != 1 {
		t.Fatalf("product reduction: %+v\n%s", d, rep)
	}
}

func TestGCDDisproofParallelizes(t *testing.T) {
	// write A[2i], read A[4i+1]: coefficients differ so the spread test
	// fails, but gcd(2,4)=2 does not divide 1: no collision ever.
	_, rep := runPass(t, `
program p
param n = 8
array A[4*n]
proc main() {
  for i = 0 to n-1 {
    A[2*i] = A[4*i+1] + 1.0
  }
}
`)
	if !decisions(rep)["i"] {
		t.Fatalf("GCD-separable accesses stayed serial:\n%s", rep)
	}
}

func TestGCDNoDisproofStaysSerial(t *testing.T) {
	// write A[2i], read A[4i+2]: gcd 2 divides 2; i=1 writes A[2] while
	// i=0 reads A[2]: genuine dependence.
	_, rep := runPass(t, `
program p
param n = 8
array A[4*n]
proc main() {
  for i = 0 to n-1 {
    A[2*i] = A[4*i+2] + 1.0
  }
}
`)
	if decisions(rep)["i"] {
		t.Fatalf("dependent strided accesses were parallelized:\n%s", rep)
	}
}

func TestPairwiseMixedAccess(t *testing.T) {
	// write A[3i] vs reads A[3i+1] and A[3i+2]: same coeff, offsets
	// {0,1,2} spread 2 < 3 passes globally already; add a read A[6i+1]
	// which breaks the global test (coeff 6) but each pair involving the
	// write is separable (gcd(3,6)=3 does not divide 1).
	_, rep := runPass(t, `
program p
param n = 8
array A[6*n + 2]
proc main() {
  for i = 0 to n-1 {
    A[3*i] = A[3*i+1] + A[3*i+2] + A[6*i+1]
  }
}
`)
	if !decisions(rep)["i"] {
		t.Fatalf("pairwise-separable accesses stayed serial:\n%s", rep)
	}
}
