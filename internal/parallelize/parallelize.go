// Package parallelize implements the front half of the paper's
// toolchain: the Polaris-style pass that turns sequential loops into
// DOALLs. The paper's inputs are "first parallelized by the Polaris
// compiler; in the parallelized code, the parallelism is expressed in
// terms of DOALL loops" — this pass lets the reproduction start from
// sequential PFL as the authors started from sequential Fortran.
//
// A serial `for` loop becomes a DOALL when no cross-iteration dependence
// can exist:
//
//   - scalar writes are either absent or are recognized reductions
//     (s = s + e / s = s * e with e free of s), which are wrapped in
//     critical sections — Polaris's reduction recognition,
//   - no procedure call appears in the body,
//   - for every array written in the body, some dimension separates the
//     iterations: every subscript range in that dimension (from all
//     writes, paired against all reads and writes of the same array) is
//     affine in the loop variable with one common coefficient a != 0 and
//     constant offsets whose spread is smaller than |a| (the classic
//     stride/offset disjointness test). Arrays that are only read never
//     constrain parallelism.
//
// The test is conservative: a loop that fails stays serial, which is
// always correct. The transformation rewrites the AST in place and
// reports, per loop, the decision and the reason — the compiler
// diagnostics a Polaris user would read.
package parallelize

import (
	"fmt"
	"strings"

	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/symexpr"
)

// Decision records the outcome for one candidate loop.
type Decision struct {
	Pos        pfl.Pos
	Var        string
	Parallel   bool
	Reason     string
	Reductions []string // scalars rewritten as critical-section reductions
}

// Report is the pass's diagnostic output.
type Report struct {
	Decisions []Decision
}

// NumParallelized counts loops converted to DOALLs.
func (r *Report) NumParallelized() int {
	n := 0
	for _, d := range r.Decisions {
		if d.Parallel {
			n++
		}
	}
	return n
}

func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Decisions {
		verdict := "serial"
		if d.Parallel {
			verdict = "DOALL"
		}
		fmt.Fprintf(&b, "%s loop %s: %-6s %s", d.Pos, d.Var, verdict, d.Reason)
		if len(d.Reductions) > 0 {
			fmt.Fprintf(&b, " (reductions: %s)", strings.Join(d.Reductions, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Run analyzes and rewrites the program in place: outermost provably
// independent `for` loops become DOALLs. The program must already have
// passed pfl.Check (the pass re-checks afterwards to renumber refs).
func Run(p *pfl.Program) (*Report, error) {
	info, err := pfl.Check(p)
	if err != nil {
		return nil, fmt.Errorf("parallelize: input does not check: %w", err)
	}
	// Parameter values are needed to fold affine subscripts.
	pr, err := prog.Build(info, 1)
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	for _, procDecl := range p.Procs {
		rewriteBlock(pr, procDecl.Body, rep, false)
	}
	// Re-check to renumber references and DOALL ids for later phases.
	if _, err := pfl.Check(p); err != nil {
		return nil, fmt.Errorf("parallelize: rewritten program does not check: %w", err)
	}
	return rep, nil
}

// rewriteBlock walks statements, converting eligible loops. inDoall
// suppresses conversion (nested DOALLs are not allowed).
func rewriteBlock(pr *prog.Prog, b *pfl.Block, rep *Report, inDoall bool) {
	for i, s := range b.Stmts {
		switch st := s.(type) {
		case *pfl.ForStmt:
			if !inDoall {
				if ok, reason, reds := loopIndependent(pr, st); ok {
					wrapReductions(st.Body, reds)
					b.Stmts[i] = &pfl.DoallStmt{
						Pos: st.Pos, Var: st.Var, Lo: st.Lo, Hi: st.Hi, Body: st.Body,
					}
					rep.Decisions = append(rep.Decisions, Decision{
						Pos: st.Pos, Var: st.Var, Parallel: true, Reason: reason,
						Reductions: sortedKeys(reds),
					})
					// Body loops stay serial inside the new DOALL.
					rewriteBlock(pr, st.Body, rep, true)
					continue
				} else {
					rep.Decisions = append(rep.Decisions, Decision{
						Pos: st.Pos, Var: st.Var, Parallel: false, Reason: reason,
					})
				}
			}
			rewriteBlock(pr, st.Body, rep, inDoall)
		case *pfl.DoallStmt:
			rewriteBlock(pr, st.Body, rep, true)
		case *pfl.IfStmt:
			rewriteBlock(pr, st.Then, rep, inDoall)
			if st.Else != nil {
				rewriteBlock(pr, st.Else, rep, inDoall)
			}
		case *pfl.CriticalStmt:
			rewriteBlock(pr, st.Body, rep, inDoall)
		case *pfl.OrderedStmt:
			rewriteBlock(pr, st.Body, rep, inDoall)
		}
	}
}

// access is one array reference collected from a loop body: per-dimension
// subscript ranges affine in the loop variable (inner serial loops
// already expanded away).
type access struct {
	write bool
	dims  []symexpr.Range
}

// loopIndependent decides whether a for loop has no cross-iteration
// dependences (modulo recognized reductions), returning the diagnostic
// reason and the reduction scalars to wrap in critical sections.
func loopIndependent(pr *prog.Prog, st *pfl.ForStmt) (bool, string, map[string]bool) {
	// Only unit-step increasing loops are considered (steps complicate
	// the stride test and the kernels never need them).
	if st.Step != nil {
		if c, ok := pr.Affine(st.Step, nil).IsConst(); !ok || c != 1 {
			return false, "non-unit step", nil
		}
	}
	col := &collector{pr: pr, loopVar: st.Var, accesses: map[string][]access{}}
	if !col.block(st.Body) {
		return false, col.obstacle, nil
	}
	if len(col.writtenArrays) == 0 && len(col.reductions) == 0 {
		return false, "no writes (parallelizing would not help)", nil
	}

	for _, arr := range sortedKeys(col.writtenArrays) {
		ok, why := arrayIndependent(col.accesses[arr], st.Var)
		if !ok {
			return false, fmt.Sprintf("array %s: %s", arr, why), nil
		}
	}
	reason := "iterations write disjoint sections"
	if len(col.writtenArrays) > 0 {
		reason = fmt.Sprintf("iterations write disjoint sections of %s",
			strings.Join(sortedKeys(col.writtenArrays), ", "))
	} else {
		reason = "pure reduction loop"
	}
	return true, reason, col.reductions
}

// wrapReductions rewrites every recognized reduction assignment in the
// body into a critical section (recursing through inner structures).
func wrapReductions(b *pfl.Block, reds map[string]bool) {
	if len(reds) == 0 {
		return
	}
	for i, s := range b.Stmts {
		switch st := s.(type) {
		case *pfl.AssignStmt:
			if vr, ok := st.LHS.(*pfl.VarRef); ok && reds[vr.Name] {
				b.Stmts[i] = &pfl.CriticalStmt{
					Pos:  st.Pos,
					Body: &pfl.Block{Stmts: []pfl.Stmt{st}},
				}
			}
		case *pfl.ForStmt:
			wrapReductions(st.Body, reds)
		case *pfl.IfStmt:
			wrapReductions(st.Then, reds)
			if st.Else != nil {
				wrapReductions(st.Else, reds)
			}
		}
	}
}

// arrayIndependent proves the absence of cross-iteration conflicts.
// First the whole-array stride/offset test (one dimension separates all
// accesses); failing that, a pairwise test: every (write, access) pair
// must be separated in some dimension either by the stride/offset test
// or by a GCD disproof (a1*i + b1 = a2*j + b2 has no integer solutions
// when gcd(a1, a2) does not divide b2 - b1).
func arrayIndependent(accs []access, loopVar string) (bool, string) {
	if len(accs) == 0 {
		return true, ""
	}
	rank := len(accs[0].dims)
	for d := 0; d < rank; d++ {
		if dimSeparates(accs, d, loopVar) {
			return true, ""
		}
	}
	// Pairwise fallback.
	for i, a := range accs {
		for j, b := range accs {
			if j <= i || (!a.write && !b.write) {
				continue
			}
			if !pairSeparated(a, b, loopVar) {
				return false, "no dimension separates the iterations"
			}
		}
		// a write must also be separated from itself across iterations
		if a.write && !pairSeparated(a, a, loopVar) {
			return false, "a write conflicts with itself across iterations"
		}
	}
	return true, ""
}

// pairSeparated checks one access pair across distinct iterations.
func pairSeparated(a, b access, loopVar string) bool {
	for d := 0; d < len(a.dims) && d < len(b.dims); d++ {
		if dimSeparates([]access{a, b}, d, loopVar) {
			return true
		}
		if gcdDisproof(a.dims[d], b.dims[d], loopVar) {
			return true
		}
	}
	return false
}

// gcdDisproof applies the classic GCD test to two point subscripts
// a1*i + b1 and a2*j + b2: if gcd(a1, a2) does not divide b2 - b1 the
// equation has no integer solutions at all, so the accesses can never
// touch the same element (in this dimension) for ANY iteration pair.
func gcdDisproof(ra, rb symexpr.Range, loopVar string) bool {
	if !ra.IsPoint() || !rb.IsPoint() {
		return false
	}
	a1 := ra.Lo.Coeff(loopVar)
	a2 := rb.Lo.Coeff(loopVar)
	if a1 == 0 && a2 == 0 {
		return false
	}
	b1, ok1 := ra.Lo.Sub(symexpr.Var(loopVar).MulConst(a1)).IsConst()
	b2, ok2 := rb.Lo.Sub(symexpr.Var(loopVar).MulConst(a2)).IsConst()
	if !ok1 || !ok2 {
		return false
	}
	g := gcd64(abs64(a1), abs64(a2))
	if g == 0 {
		return false
	}
	return (b2-b1)%g != 0
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// dimSeparates checks the test on dimension d.
func dimSeparates(accs []access, d int, loopVar string) bool {
	var coeff int64
	first := true
	var minC, maxC int64
	for _, a := range accs {
		if d >= len(a.dims) {
			return false
		}
		r := a.dims[d]
		for _, e := range []symexpr.Expr{r.Lo, r.Hi} {
			if e.IsUnknown() {
				return false
			}
			c := e.Coeff(loopVar)
			if c == 0 {
				return false
			}
			// The offset must be constant once the loop term is removed
			// (no other symbolic variables).
			off := e.Sub(symexpr.Var(loopVar).MulConst(c))
			k, ok := off.IsConst()
			if !ok {
				return false
			}
			if first {
				coeff = c
				minC, maxC = k, k
				first = false
				continue
			}
			if c != coeff {
				return false
			}
			if k < minC {
				minC = k
			}
			if k > maxC {
				maxC = k
			}
		}
	}
	a := coeff
	if a < 0 {
		a = -a
	}
	return maxC-minC < a
}

// collector gathers array accesses with the loop variable symbolic and
// inner serial loops expanded; it aborts on parallelization obstacles.
type collector struct {
	pr            *prog.Prog
	loopVar       string
	innerLoops    []innerLoop
	accesses      map[string][]access
	writtenArrays map[string]bool
	// reductions maps scalars whose only appearances are recognized
	// accumulations s = s op e; otherUses tracks scalars read outside
	// their own accumulation, which disqualifies them.
	reductions map[string]bool
	otherUses  map[string]bool
	obstacle   string
}

type innerLoop struct {
	v      string
	lo, hi symexpr.Expr
}

func (c *collector) fail(reason string) bool {
	if c.obstacle == "" {
		c.obstacle = reason
	}
	return false
}

func (c *collector) vars() map[string]bool {
	m := map[string]bool{c.loopVar: true}
	for _, il := range c.innerLoops {
		m[il.v] = true
	}
	return m
}

func (c *collector) block(b *pfl.Block) bool {
	for _, s := range b.Stmts {
		if !c.stmt(s) {
			return false
		}
	}
	return true
}

func (c *collector) stmt(s pfl.Stmt) bool {
	switch st := s.(type) {
	case *pfl.AssignStmt:
		switch lhs := st.LHS.(type) {
		case *pfl.VarRef:
			// Reduction recognition: s = s op e with e free of s.
			if op, rhs, ok := reductionForm(lhs.Name, st.RHS); ok && !usesScalar(rhs, lhs.Name) {
				_ = op
				if c.otherUses[lhs.Name] {
					return c.fail(fmt.Sprintf("scalar %s used outside its reduction", lhs.Name))
				}
				if c.reductions == nil {
					c.reductions = map[string]bool{}
				}
				c.reductions[lhs.Name] = true
				return c.expr(rhs)
			}
			return c.fail(fmt.Sprintf("writes shared scalar %s", lhs.Name))
		case *pfl.IndexRef:
			if !c.ref(lhs, true) {
				return false
			}
			for _, sub := range lhs.Subs {
				if !c.expr(sub) {
					return false
				}
			}
		}
		return c.expr(st.RHS)
	case *pfl.ForStmt:
		vars := c.vars()
		lo := c.pr.Affine(st.Lo, vars)
		hi := c.pr.Affine(st.Hi, vars)
		if st.Step != nil {
			if v, ok := c.pr.Affine(st.Step, vars).IsConst(); !ok || v != 1 {
				return c.fail("inner loop with non-unit step")
			}
		}
		if !c.expr(st.Lo) || !c.expr(st.Hi) {
			return false
		}
		c.innerLoops = append(c.innerLoops, innerLoop{st.Var, lo, hi})
		ok := c.block(st.Body)
		c.innerLoops = c.innerLoops[:len(c.innerLoops)-1]
		return ok
	case *pfl.IfStmt:
		// Conditional bodies still contribute may-accesses.
		if !c.expr(st.Cond) || !c.block(st.Then) {
			return false
		}
		if st.Else != nil {
			return c.block(st.Else)
		}
		return true
	case *pfl.CallStmt:
		return c.fail(fmt.Sprintf("calls %s", st.Name))
	case *pfl.DoallStmt:
		return c.fail("contains a DOALL already")
	case *pfl.CriticalStmt, *pfl.OrderedStmt:
		return c.fail("contains a synchronized section")
	default:
		return c.fail("unsupported statement")
	}
}

func (c *collector) expr(e pfl.Expr) bool {
	switch ex := e.(type) {
	case *pfl.NumLit:
		return true
	case *pfl.VarRef:
		if ex.RefID >= 0 { // resolves to a shared scalar
			if c.reductions[ex.Name] {
				return c.fail(fmt.Sprintf("scalar %s used outside its reduction", ex.Name))
			}
			if c.otherUses == nil {
				c.otherUses = map[string]bool{}
			}
			c.otherUses[ex.Name] = true
		}
		return true
	case *pfl.IndexRef:
		if !c.ref(ex, false) {
			return false
		}
		for _, sub := range ex.Subs {
			if !c.expr(sub) {
				return false
			}
		}
		return true
	case *pfl.BinExpr:
		return c.expr(ex.X) && c.expr(ex.Y)
	case *pfl.UnExpr:
		return c.expr(ex.X)
	case *pfl.CallExpr:
		for _, a := range ex.Args {
			if !c.expr(a) {
				return false
			}
		}
		return true
	default:
		return c.fail("unsupported expression")
	}
}

// ref records one array access, expanding inner loop variables.
func (c *collector) ref(ir *pfl.IndexRef, write bool) bool {
	vars := c.vars()
	dims := make([]symexpr.Range, len(ir.Subs))
	for i, sub := range ir.Subs {
		e := c.pr.Affine(sub, vars)
		r := symexpr.PointRange(e)
		for j := len(c.innerLoops) - 1; j >= 0; j-- {
			il := c.innerLoops[j]
			r = r.Expand(il.v, il.lo, il.hi)
		}
		dims[i] = r
	}
	if c.accesses == nil {
		c.accesses = map[string][]access{}
	}
	c.accesses[ir.Name] = append(c.accesses[ir.Name], access{write: write, dims: dims})
	if write {
		if c.writtenArrays == nil {
			c.writtenArrays = map[string]bool{}
		}
		c.writtenArrays[ir.Name] = true
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// reductionForm matches RHS patterns s + e, e + s, s * e, e * s for the
// scalar named name, returning the operator and the e operand.
func reductionForm(name string, rhs pfl.Expr) (string, pfl.Expr, bool) {
	be, ok := rhs.(*pfl.BinExpr)
	if !ok || (be.Op != "+" && be.Op != "*") {
		return "", nil, false
	}
	if vr, ok := be.X.(*pfl.VarRef); ok && vr.Name == name {
		return be.Op, be.Y, true
	}
	if vr, ok := be.Y.(*pfl.VarRef); ok && vr.Name == name {
		return be.Op, be.X, true
	}
	return "", nil, false
}

// usesScalar reports whether e mentions the named scalar.
func usesScalar(e pfl.Expr, name string) bool {
	switch ex := e.(type) {
	case *pfl.VarRef:
		return ex.Name == name
	case *pfl.IndexRef:
		for _, s := range ex.Subs {
			if usesScalar(s, name) {
				return true
			}
		}
	case *pfl.BinExpr:
		return usesScalar(ex.X, name) || usesScalar(ex.Y, name)
	case *pfl.UnExpr:
		return usesScalar(ex.X, name)
	case *pfl.CallExpr:
		for _, a := range ex.Args {
			if usesScalar(a, name) {
				return true
			}
		}
	}
	return false
}
