package memsys

// Stream cursors: the memory-system half of the affine reference-stream
// fast path (the simulator half lives in internal/sim/stream.go).
//
// The simulator recognizes innermost serial loops whose bodies are
// straight-line assignments over affine array references and executes
// them as precomputed (base, stride, count) streams. Each stream drives
// one cursor, initialized once per loop entry by the scheme
// (InitReadCursor / InitWriteCursor) and then invoked once per element
// with a precomputed address. A cursor inlines the scheme's common case
// — the cache hit for SC/TPI regular and Time-Reads, the uncached word
// fetch for BASE — and delegates everything else (fills, refreshes,
// evictions, prefetch, bypass reads) to the scheme's own scalar
// Read/Write, so every counter, timetag transition, latency charge, and
// traffic injection is bit-identical to the scalar path by construction.
//
// Soundness of the inlined hit: the cursor caches the line pointer of
// the previously-touched line and revalidates it on every access
// (tag match + not Invalid) — exactly the condition cache.Lookup uses —
// so any eviction, refill, or invalidation between two accesses is
// observed. The hit predicate (word valid, timetag within the Time-Read
// window cut) is the scalar hit predicate verbatim; when it fails the
// cursor falls back to the scheme's scalar path, which re-runs the full
// decision from scratch. Coherence state only changes at epoch
// boundaries, and cursors never outlive the loop entry that initialized
// them, so the captured Lane/Epoch/window-cut stay valid for the
// cursor's whole life (loops execute inside one task of one epoch).

import (
	"repro/internal/cache"
	"repro/internal/prog"
	"repro/internal/stats"
)

// StreamMode selects how a cursor performs each reference.
type StreamMode uint8

const (
	// StreamCached inlines the cache-hit path and falls back to the
	// scheme's scalar Read/Write on anything else (SC/TPI).
	StreamCached StreamMode = iota
	// StreamUncached routes every reference through the scheme's scalar
	// path: for reads (SC/TPI bypass reads) the miss class is the bypass
	// class; for writes the class is recovered by counter diffing
	// (Tardis write streams, whose per-line lease state rules out a
	// stream-constant WTT).
	StreamUncached
	// StreamBase inlines BASE's uncached remote word access.
	StreamBase
	// StreamHW inlines the HW directory's exclusive-hit write path and
	// falls back to the scalar Write for shared hits and misses (which
	// involve the directory). Reads use StreamCached: an HW read hit is
	// any valid word.
	StreamHW
	// StreamTwoLevel puts the on-chip L1 filter in front of an inner
	// cursor mode (two-level TPI): regular reads hit the L1, everything
	// else invalidates the L1 word and takes the inner (L2) path.
	StreamTwoLevel
	// StreamTardis inlines the Tardis 2.0 exclusive-hit silent store —
	// valid only while the frozen home owner table still names this
	// processor — and falls back to the scalar Write for everything else
	// (shared hits need a lease grant and a home action-log entry).
	// Tardis reads use StreamCached: the hit predicate is the uniform
	// lease check TT[w] >= gts.
	StreamTardis
)

// Streamer is implemented by schemes that can batch affine reference
// streams. Cursors are valid for one loop entry within one epoch: they
// capture the processor's current Lane, so they must be re-initialized
// after any epoch boundary or Begin/EndParallelEpoch transition (the
// simulator initializes them at stream-loop entry, which satisfies
// both).
type Streamer interface {
	System
	// StreamCapable reports whether this instance batches streams. A
	// scheme embedding a capable one (e.g. two-level TPI) overrides it
	// to opt out.
	StreamCapable() bool
	// InitReadCursor prepares c to perform processor p's reads of the
	// given compiler mark. addr0 is the stream's first address; schemes
	// whose hit predicate depends on the referenced variable (VC's
	// per-variable version cut) may capture state derived from it — the
	// affine entry guards keep every stream address inside one variable.
	InitReadCursor(c *ReadCursor, p int, kind ReadKind, window int, addr0 prog.Word)
	// InitWriteCursor prepares c to perform processor p's non-critical
	// writes; addr0 as for InitReadCursor.
	InitWriteCursor(c *WriteCursor, p int, addr0 prog.Word)
}

// ReadCursor performs one read stream's references.
type ReadCursor struct {
	Mode StreamMode
	Sys  System // scalar fallback target
	Core *Core
	Ln   *Lane
	CC   *cache.Cache
	Proc int
	Kind ReadKind
	// Window is the Time-Read window (passed through to the fallback).
	Window int
	// Cut is the minimum timetag a cached word needs to hit: the
	// Time-Read window bound E-min(w,maxW) for Time-Reads, math.MinInt64
	// for regular reads (any valid word hits).
	Cut int64
	// PromoteTT: a validated hit promotes the word timetag to the epoch
	// (per-word tags only; line-granular tags may not be promoted).
	PromoteTT bool
	Epoch     int64
	HitCycles int64
	HitCtx    string // staleness-oracle context label for hits
	// Fresh is the lane's FreshWords view: non-nil for pass-through
	// lanes, letting the hit path inline the staleness-oracle compare
	// (CheckFresh remains the mismatch/buffered path).
	Fresh []float64

	// Two-level TPI (StreamTwoLevel): the on-chip L1 in front of the
	// inner (L2) path, whose mode the inner scheme's init left in Inner.
	Inner       StreamMode
	L1          *cache.Cache
	L1HitCycles int64
	L2HitCycles int64

	line   *cache.Line // last-touched line; revalidated on every access
	l1line *cache.Line // StreamTwoLevel: last-touched L1 line

	// Batched counters, applied by Flush at stream-loop exit. Stats and
	// network load are only observed at epoch boundaries (the network
	// clock advances at AdvanceTo, between epochs), so deferring the
	// increments is unobservable. The scalar-fallback delegate still
	// updates the lane stats directly, which keeps its counter-diff
	// class recovery self-consistent.
	hits    int64 // StreamCached: pending Reads/ReadHits
	n       int64 // StreamBase: pending Reads/ReadMisses/traffic
	latSum  int64 // StreamBase: pending MissLatencySum
	l1hits  int64 // StreamTwoLevel: pending L1Hits (and Reads/ReadHits)
	l1miss  int64 // StreamTwoLevel: pending L1Misses
	trInval int64 // StreamTwoLevel: pending TimeReadL1Invalidations
}

// Flush applies the cursor's batched counters to the lane. runStream
// calls it once per stream loop, after the last reference.
func (c *ReadCursor) Flush() {
	switch c.Mode {
	case StreamCached:
		st := c.Ln.St
		st.Reads += c.hits
		st.ReadHits += c.hits
		c.hits = 0
	case StreamTwoLevel:
		st := c.Ln.St
		st.L1Hits += c.l1hits
		st.Reads += c.l1hits // an L1 hit counts as a read hit
		st.ReadHits += c.l1hits
		st.L1Misses += c.l1miss
		st.TimeReadL1Invalidations += c.trInval
		st.Reads += c.hits // inner (L2) cursor hits
		st.ReadHits += c.hits
		c.l1hits, c.l1miss, c.trInval, c.hits = 0, 0, 0, 0
	case StreamBase:
		st := c.Ln.St
		st.Reads += c.n
		st.ReadMisses[stats.MissBypass] += c.n
		st.ReadTrafficWords += c.n
		st.MissLatencySum += c.latSum
		c.Ln.Inject(2 * c.n)
		c.n, c.latSum = 0, 0
	}
}

// Read performs one read at addr. It returns the value, the processor
// stall, and the miss class (-1 for a hit), mirroring what the
// simulator's counter-diff recovery would report for the scalar path.
func (c *ReadCursor) Read(addr prog.Word) (float64, int64, int8) {
	switch c.Mode {
	case StreamCached:
		return c.readCached(addr)

	case StreamTwoLevel:
		if c.Kind == ReadRegular {
			tag, w := c.L1.Split(addr)
			l := c.l1line
			if l == nil || l.Tag != tag || l.State == cache.Invalid {
				l, _, _ = c.L1.Lookup(addr)
				c.l1line = l
			}
			if l != nil && l.TT[w] != cache.TTInvalid {
				c.l1hits++
				c.L1.Touch(l)
				v := l.Vals[w]
				if c.Fresh == nil || v != c.Fresh[addr] {
					c.Ln.CheckFresh(addr, v, c.Proc, "tpi2l L1 hit")
				}
				return v, c.L1HitCycles, -1
			}
			c.l1miss++
			v, lat, class := c.readInner(addr)
			if lat == c.HitCycles {
				lat = c.L2HitCycles // the L2 tag+timetag access is slower
			}
			FillWordL1(c.L1, addr, v)
			c.l1line = nil // the fill may have installed or moved the line
			return v, lat, class
		}
		// Time-Read / bypass: the on-chip copy cannot be validated; the
		// compiled sequence invalidates it and re-reads through the L2.
		if l, w, ok := c.L1.Lookup(addr); ok && l.ValidWord(w) {
			l.InvalidateWord(w)
			c.trInval++
		}
		v, lat, class := c.readInner(addr)
		if lat == c.HitCycles {
			lat = c.L2HitCycles
		}
		if c.Kind == ReadTime {
			FillWordL1(c.L1, addr, v)
			c.l1line = nil
		}
		return v, lat, class

	case StreamBase:
		c.n++
		lat := c.Core.WordMissLatencyFor(c.Proc, addr)
		c.latSum += lat
		return c.Ln.Value(addr), lat, int8(stats.MissBypass)

	default: // StreamUncached
		v, stall := c.Sys.Read(c.Proc, addr, c.Kind, c.Window)
		return v, stall, int8(stats.MissBypass)
	}
}

// readInner runs the inner (L2) path of a two-level cursor: the mode the
// inner scheme's InitReadCursor selected before the wrapper re-tagged the
// cursor StreamTwoLevel.
func (c *ReadCursor) readInner(addr prog.Word) (float64, int64, int8) {
	if c.Inner == StreamCached {
		return c.readCached(addr)
	}
	// StreamUncached (bypass reads).
	v, stall := c.Sys.Read(c.Proc, addr, c.Kind, c.Window)
	return v, stall, int8(stats.MissBypass)
}

// readCached is the StreamCached reference: the inlined revalidated-hit
// path with scalar fallback.
func (c *ReadCursor) readCached(addr prog.Word) (float64, int64, int8) {
	tag, w := c.CC.Split(addr)
	l := c.line
	if l == nil || l.Tag != tag || l.State == cache.Invalid {
		l, _, _ = c.CC.Lookup(addr)
		c.line = l
	}
	if l != nil && l.TT[w] != cache.TTInvalid && l.TT[w] >= c.Cut {
		c.hits++
		if c.PromoteTT {
			l.TT[w] = c.Epoch
		}
		l.Used[w] = true
		c.CC.Touch(l)
		v := l.Vals[w]
		if c.Fresh == nil || v != c.Fresh[addr] {
			// Buffered lane, or a genuine staleness-oracle failure:
			// CheckFresh re-runs the compare against the value this
			// processor must see and panics with the full diagnostic.
			c.Ln.CheckFresh(addr, v, c.Proc, c.HitCtx)
		}
		return v, c.HitCycles, -1
	}
	// Anything but a clean hit — absent line, word-grain hole,
	// window failure — takes the scheme's full scalar path (refresh,
	// fill, eviction, prefetch, classification). The class is
	// recovered by diffing the lane counters, exactly like
	// sim.readClassified.
	st := c.Ln.St
	hitsBefore := st.ReadHits
	missBefore := st.ReadMisses
	v, stall := c.Sys.Read(c.Proc, addr, c.Kind, c.Window)
	class := int8(-1)
	if st.ReadHits == hitsBefore {
		for i := range st.ReadMisses {
			if st.ReadMisses[i] != missBefore[i] {
				class = int8(i)
				break
			}
		}
	}
	c.line = nil // the fill may have replaced or moved the line
	return v, stall, class
}

// FillWordL1 installs one word in a two-level on-chip L1 (word-grain
// validate; no extra memory traffic — the data just came through the L2
// path). Shared by the scalar two-level Read path and StreamTwoLevel
// cursors.
func FillWordL1(l1 *cache.Cache, addr prog.Word, v float64) {
	if line, w, ok := l1.Lookup(addr); ok {
		line.Vals[w] = v
		line.TT[w] = 0 // L1 carries no timetags; 0 marks "valid"
		l1.Touch(line)
		return
	}
	vic := l1.Victim(addr)
	if vic.State != cache.Invalid {
		vic.InvalidateLine() // clean write-through L1: silent drop
	}
	tag, w := l1.Split(addr)
	vic.Tag = tag
	vic.State = cache.Shared
	vic.Vals[w] = v
	vic.TT[w] = 0
	l1.Touch(vic)
}

// WriteCursor performs one write stream's references.
type WriteCursor struct {
	Mode StreamMode
	Sys  System
	Core *Core
	Ln   *Lane
	CC   *cache.Cache
	Tr   *cache.Tracker
	WB   *cache.WriteBuffer
	Proc int
	// Epoch stamps the memory write; WTT stamps the cache word timetag
	// (the epoch, or epoch-1 under line-granular timetags).
	Epoch, WTT int64
	// PromoteTT selects TPI's promote-if-older tag rule; false is SC's
	// unconditional assignment.
	PromoteTT bool
	// WriteBack marks dirty instead of writing through (TPIWriteBack).
	WriteBack bool
	// SeqC exposes the store latency (sequential consistency).
	SeqC bool

	// Two-level TPI (StreamTwoLevel): the on-chip L1 updated in front of
	// the inner cursor mode.
	Inner StreamMode
	L1    *cache.Cache

	// Tardis (StreamTardis): the home directory's frozen per-line owner
	// table, indexed by global line number (the cache tag). A silent
	// store is sound only while the home still names this processor the
	// owner; the table is frozen mid-epoch (replay happens at the
	// barrier), so the check is deterministic.
	Owners []int16

	line   *cache.Line
	l1line *cache.Line

	// Batched counters, applied by Flush at stream-loop exit (same
	// argument as ReadCursor's: stats and network load are only observed
	// at epoch boundaries). Miss classification and latency stay
	// per-reference.
	n          int64 // pending Writes
	hits       int64 // StreamCached: pending WriteHits
	traffic    int64 // pending WriteTrafficWords (and Inject words)
	coalesced  int64 // StreamCached: pending WritesCoalesced
	missLatSum int64 // pending WriteMissLatencySum
}

// Flush applies the cursor's batched counters to the lane.
func (c *WriteCursor) Flush() {
	st := c.Ln.St
	st.Writes += c.n
	if c.Mode == StreamBase {
		st.WriteMisses[stats.MissBypass] += c.n
	}
	st.WriteHits += c.hits
	st.WriteTrafficWords += c.traffic
	st.WritesCoalesced += c.coalesced
	st.WriteMissLatencySum += c.missLatSum
	c.Ln.Inject(c.traffic)
	c.n, c.hits, c.traffic, c.coalesced, c.missLatSum = 0, 0, 0, 0, 0
}

// Write performs one non-critical write of val to addr. It returns the
// processor stall and the miss class (-1 for a write hit).
func (c *WriteCursor) Write(addr prog.Word, val float64) (int64, int8) {
	switch c.Mode {
	case StreamBase:
		c.n++
		c.traffic++
		c.Ln.Write(addr, val, c.Proc, c.Epoch)
		if c.SeqC {
			lat := c.Core.WordMissLatencyFor(c.Proc, addr)
			c.missLatSum += lat
			return lat, int8(stats.MissBypass)
		}
		return 0, int8(stats.MissBypass)

	case StreamHW:
		// Inline the directory's exclusive-hit store: silent (no
		// directory interaction mid-epoch), so only the own-cache word
		// update and the buffered memory shadow happen here. Shared
		// hits (upgrades) and misses involve the directory action log —
		// scalar path.
		tag, w := c.CC.Split(addr)
		l := c.line
		if l == nil || l.Tag != tag || l.State == cache.Invalid {
			l, _, _ = c.CC.Lookup(addr)
			c.line = l
		}
		if l != nil && l.State == cache.Exclusive && l.TT[w] != cache.TTInvalid {
			c.n++
			c.hits++
			c.Ln.Write(addr, val, c.Proc, c.Epoch)
			l.Vals[w] = val
			l.Used[w] = true
			l.Dirty = true
			c.CC.Touch(l)
			return 0, -1
		}
		st := c.Ln.St
		hitsBefore := st.WriteHits
		missBefore := st.WriteMisses
		stall := c.Sys.Write(c.Proc, addr, val, false)
		class := int8(-1)
		if st.WriteHits == hitsBefore {
			for i := range st.WriteMisses {
				if st.WriteMisses[i] != missBefore[i] {
					class = int8(i)
					break
				}
			}
		}
		c.line = nil // an upgrade/fill may have moved or replaced the line
		return stall, class

	case StreamTwoLevel:
		// Write-through both levels: update a valid on-chip word (stream
		// writes are never critical), then run the inner (L2) path.
		tag, w := c.L1.Split(addr)
		l := c.l1line
		if l == nil || l.Tag != tag || l.State == cache.Invalid {
			l, _, _ = c.L1.Lookup(addr)
			c.l1line = l
		}
		if l != nil && l.TT[w] != cache.TTInvalid {
			l.Vals[w] = val
		}
		return c.writeCached(addr, val)

	case StreamTardis:
		// Inline the exclusive-hit silent store: no home message while
		// this processor is still the frozen owner, so only the own-cache
		// word update and the buffered memory shadow happen here. The
		// word's lease timetag is NOT extended — exactly what the scalar
		// silent-store path does. Shared hits, demotions, and misses need
		// the lease grant and the home action log — scalar path.
		tag, w := c.CC.Split(addr)
		l := c.line
		if l == nil || l.Tag != tag || l.State == cache.Invalid {
			l, _, _ = c.CC.Lookup(addr)
			c.line = l
		}
		if l != nil && l.State == cache.Exclusive && l.TT[w] != cache.TTInvalid &&
			int(tag) < len(c.Owners) && c.Owners[tag] == int16(c.Proc) {
			c.n++
			c.hits++
			c.Ln.Write(addr, val, c.Proc, c.Epoch)
			l.Vals[w] = val
			l.Used[w] = true
			l.Dirty = true
			c.CC.Touch(l)
			return 0, -1
		}
		stall, class := c.delegate(addr, val)
		c.line = nil // a grant/fill may have moved or replaced the line
		return stall, class

	case StreamUncached:
		// Scalar-delegate mode: every store runs the scheme's full Write
		// (schemes whose written-word timetag depends on per-line home
		// state cannot capture a single stream-constant WTT).
		return c.delegate(addr, val)
	}
	return c.writeCached(addr, val)
}

// delegate routes one store through the scheme's scalar Write, recovering
// the miss class by diffing the lane counters (like sim.writeClassified).
func (c *WriteCursor) delegate(addr prog.Word, val float64) (int64, int8) {
	st := c.Ln.St
	hitsBefore := st.WriteHits
	missBefore := st.WriteMisses
	stall := c.Sys.Write(c.Proc, addr, val, false)
	class := int8(-1)
	if st.WriteHits == hitsBefore {
		for i := range st.WriteMisses {
			if st.WriteMisses[i] != missBefore[i] {
				class = int8(i)
				break
			}
		}
	}
	return stall, class
}

// writeCached is the StreamCached store: the inlined present-line write
// (hit or word-grain allocate) with scalar fallback for absent lines,
// which need the scheme's write-validate frame allocation and eviction
// accounting.
func (c *WriteCursor) writeCached(addr prog.Word, val float64) (int64, int8) {
	tag, w := c.CC.Split(addr)
	l := c.line
	if l == nil || l.Tag != tag || l.State == cache.Invalid {
		l, _, _ = c.CC.Lookup(addr)
		c.line = l
	}
	if l == nil {
		st := c.Ln.St
		hitsBefore := st.WriteHits
		missBefore := st.WriteMisses
		stall := c.Sys.Write(c.Proc, addr, val, false)
		class := int8(-1)
		if st.WriteHits == hitsBefore {
			for i := range st.WriteMisses {
				if st.WriteMisses[i] != missBefore[i] {
					class = int8(i)
					break
				}
			}
		}
		// The allocation just installed a line; find it on the next access.
		return stall, class
	}
	ln := c.Ln
	c.n++
	ln.Write(addr, val, c.Proc, c.Epoch)
	hit := l.TT[w] != cache.TTInvalid
	class := int8(-1)
	if hit {
		c.hits++
	} else {
		// Classify before the tracker below records the new residency.
		cls := c.Core.ClassifyMissLane(ln, c.Tr, addr)
		ln.St.WriteMisses[cls]++
		class = int8(cls)
	}
	l.Vals[w] = val
	if c.PromoteTT {
		if l.TT[w] < c.WTT || l.TT[w] == cache.TTInvalid {
			l.TT[w] = c.WTT
		}
	} else {
		l.TT[w] = c.WTT
	}
	l.Used[w] = true
	c.CC.Touch(l)
	c.Tr.NoteCached(addr)
	if c.WriteBack {
		l.DirtyW[w] = true
		return 0, class
	}
	if c.WB.Write(addr) {
		c.traffic++
	} else {
		c.coalesced++
	}
	if c.SeqC {
		lat := c.Core.WordMissLatencyFor(c.Proc, addr)
		if !hit {
			c.missLatSum += lat
		}
		return lat, class
	}
	return 0, class
}
