package memsys

// Stream cursors: the memory-system half of the affine reference-stream
// fast path (the simulator half lives in internal/sim/stream.go).
//
// The simulator recognizes innermost serial loops whose bodies are
// straight-line assignments over affine array references and executes
// them as precomputed (base, stride, count) streams. Each stream drives
// one cursor, initialized once per loop entry by the scheme
// (InitReadCursor / InitWriteCursor) and then invoked once per element
// with a precomputed address. A cursor inlines the scheme's common case
// — the cache hit for SC/TPI regular and Time-Reads, the uncached word
// fetch for BASE — and delegates everything else (fills, refreshes,
// evictions, prefetch, bypass reads) to the scheme's own scalar
// Read/Write, so every counter, timetag transition, latency charge, and
// traffic injection is bit-identical to the scalar path by construction.
//
// Soundness of the inlined hit: the cursor caches the line pointer of
// the previously-touched line and revalidates it on every access
// (tag match + not Invalid) — exactly the condition cache.Lookup uses —
// so any eviction, refill, or invalidation between two accesses is
// observed. The hit predicate (word valid, timetag within the Time-Read
// window cut) is the scalar hit predicate verbatim; when it fails the
// cursor falls back to the scheme's scalar path, which re-runs the full
// decision from scratch. Coherence state only changes at epoch
// boundaries, and cursors never outlive the loop entry that initialized
// them, so the captured Lane/Epoch/window-cut stay valid for the
// cursor's whole life (loops execute inside one task of one epoch).

import (
	"repro/internal/cache"
	"repro/internal/prog"
	"repro/internal/stats"
)

// StreamMode selects how a cursor performs each reference.
type StreamMode uint8

const (
	// StreamCached inlines the cache-hit path and falls back to the
	// scheme's scalar Read/Write on anything else (SC/TPI).
	StreamCached StreamMode = iota
	// StreamUncached routes every reference through the scheme's scalar
	// path (SC/TPI bypass reads); the miss class is the bypass class.
	StreamUncached
	// StreamBase inlines BASE's uncached remote word access.
	StreamBase
)

// Streamer is implemented by schemes that can batch affine reference
// streams. Cursors are valid for one loop entry within one epoch: they
// capture the processor's current Lane, so they must be re-initialized
// after any epoch boundary or Begin/EndParallelEpoch transition (the
// simulator initializes them at stream-loop entry, which satisfies
// both).
type Streamer interface {
	System
	// StreamCapable reports whether this instance batches streams. A
	// scheme embedding a capable one (e.g. two-level TPI) overrides it
	// to opt out.
	StreamCapable() bool
	// InitReadCursor prepares c to perform processor p's reads of the
	// given compiler mark.
	InitReadCursor(c *ReadCursor, p int, kind ReadKind, window int)
	// InitWriteCursor prepares c to perform processor p's non-critical
	// writes.
	InitWriteCursor(c *WriteCursor, p int)
}

// ReadCursor performs one read stream's references.
type ReadCursor struct {
	Mode StreamMode
	Sys  System // scalar fallback target
	Core *Core
	Ln   *Lane
	CC   *cache.Cache
	Proc int
	Kind ReadKind
	// Window is the Time-Read window (passed through to the fallback).
	Window int
	// Cut is the minimum timetag a cached word needs to hit: the
	// Time-Read window bound E-min(w,maxW) for Time-Reads, math.MinInt64
	// for regular reads (any valid word hits).
	Cut int64
	// PromoteTT: a validated hit promotes the word timetag to the epoch
	// (per-word tags only; line-granular tags may not be promoted).
	PromoteTT bool
	Epoch     int64
	HitCycles int64
	HitCtx    string // staleness-oracle context label for hits
	// Fresh is the lane's FreshWords view: non-nil for pass-through
	// lanes, letting the hit path inline the staleness-oracle compare
	// (CheckFresh remains the mismatch/buffered path).
	Fresh []float64

	line *cache.Line // last-touched line; revalidated on every access

	// Batched counters, applied by Flush at stream-loop exit. Stats and
	// network load are only observed at epoch boundaries (the network
	// clock advances at AdvanceTo, between epochs), so deferring the
	// increments is unobservable. The scalar-fallback delegate still
	// updates the lane stats directly, which keeps its counter-diff
	// class recovery self-consistent.
	hits   int64 // StreamCached: pending Reads/ReadHits
	n      int64 // StreamBase: pending Reads/ReadMisses/traffic
	latSum int64 // StreamBase: pending MissLatencySum
}

// Flush applies the cursor's batched counters to the lane. runStream
// calls it once per stream loop, after the last reference.
func (c *ReadCursor) Flush() {
	switch c.Mode {
	case StreamCached:
		st := c.Ln.St
		st.Reads += c.hits
		st.ReadHits += c.hits
		c.hits = 0
	case StreamBase:
		st := c.Ln.St
		st.Reads += c.n
		st.ReadMisses[stats.MissBypass] += c.n
		st.ReadTrafficWords += c.n
		st.MissLatencySum += c.latSum
		c.Ln.Inject(2 * c.n)
		c.n, c.latSum = 0, 0
	}
}

// Read performs one read at addr. It returns the value, the processor
// stall, and the miss class (-1 for a hit), mirroring what the
// simulator's counter-diff recovery would report for the scalar path.
func (c *ReadCursor) Read(addr prog.Word) (float64, int64, int8) {
	switch c.Mode {
	case StreamCached:
		tag, w := c.CC.Split(addr)
		l := c.line
		if l == nil || l.Tag != tag || l.State == cache.Invalid {
			l, _, _ = c.CC.Lookup(addr)
			c.line = l
		}
		if l != nil && l.TT[w] != cache.TTInvalid && l.TT[w] >= c.Cut {
			c.hits++
			if c.PromoteTT {
				l.TT[w] = c.Epoch
			}
			l.Used[w] = true
			c.CC.Touch(l)
			v := l.Vals[w]
			if c.Fresh == nil || v != c.Fresh[addr] {
				// Buffered lane, or a genuine staleness-oracle failure:
				// CheckFresh re-runs the compare against the value this
				// processor must see and panics with the full diagnostic.
				c.Ln.CheckFresh(addr, v, c.Proc, c.HitCtx)
			}
			return v, c.HitCycles, -1
		}
		// Anything but a clean hit — absent line, word-grain hole,
		// window failure — takes the scheme's full scalar path (refresh,
		// fill, eviction, prefetch, classification). The class is
		// recovered by diffing the lane counters, exactly like
		// sim.readClassified.
		st := c.Ln.St
		hitsBefore := st.ReadHits
		missBefore := st.ReadMisses
		v, stall := c.Sys.Read(c.Proc, addr, c.Kind, c.Window)
		class := int8(-1)
		if st.ReadHits == hitsBefore {
			for i := range st.ReadMisses {
				if st.ReadMisses[i] != missBefore[i] {
					class = int8(i)
					break
				}
			}
		}
		c.line = nil // the fill may have replaced or moved the line
		return v, stall, class

	case StreamBase:
		c.n++
		lat := c.Core.WordMissLatencyFor(c.Proc, addr)
		c.latSum += lat
		return c.Ln.Value(addr), lat, int8(stats.MissBypass)

	default: // StreamUncached
		v, stall := c.Sys.Read(c.Proc, addr, c.Kind, c.Window)
		return v, stall, int8(stats.MissBypass)
	}
}

// WriteCursor performs one write stream's references.
type WriteCursor struct {
	Mode StreamMode
	Sys  System
	Core *Core
	Ln   *Lane
	CC   *cache.Cache
	Tr   *cache.Tracker
	WB   *cache.WriteBuffer
	Proc int
	// Epoch stamps the memory write; WTT stamps the cache word timetag
	// (the epoch, or epoch-1 under line-granular timetags).
	Epoch, WTT int64
	// PromoteTT selects TPI's promote-if-older tag rule; false is SC's
	// unconditional assignment.
	PromoteTT bool
	// WriteBack marks dirty instead of writing through (TPIWriteBack).
	WriteBack bool
	// SeqC exposes the store latency (sequential consistency).
	SeqC bool

	line *cache.Line

	// Batched counters, applied by Flush at stream-loop exit (same
	// argument as ReadCursor's: stats and network load are only observed
	// at epoch boundaries). Miss classification and latency stay
	// per-reference.
	n          int64 // pending Writes
	hits       int64 // StreamCached: pending WriteHits
	traffic    int64 // pending WriteTrafficWords (and Inject words)
	coalesced  int64 // StreamCached: pending WritesCoalesced
	missLatSum int64 // pending WriteMissLatencySum
}

// Flush applies the cursor's batched counters to the lane.
func (c *WriteCursor) Flush() {
	st := c.Ln.St
	st.Writes += c.n
	if c.Mode == StreamBase {
		st.WriteMisses[stats.MissBypass] += c.n
	}
	st.WriteHits += c.hits
	st.WriteTrafficWords += c.traffic
	st.WritesCoalesced += c.coalesced
	st.WriteMissLatencySum += c.missLatSum
	c.Ln.Inject(c.traffic)
	c.n, c.hits, c.traffic, c.coalesced, c.missLatSum = 0, 0, 0, 0, 0
}

// Write performs one non-critical write of val to addr. It returns the
// processor stall and the miss class (-1 for a write hit).
func (c *WriteCursor) Write(addr prog.Word, val float64) (int64, int8) {
	if c.Mode == StreamBase {
		c.n++
		c.traffic++
		c.Ln.Write(addr, val, c.Proc, c.Epoch)
		if c.SeqC {
			lat := c.Core.WordMissLatencyFor(c.Proc, addr)
			c.missLatSum += lat
			return lat, int8(stats.MissBypass)
		}
		return 0, int8(stats.MissBypass)
	}

	// StreamCached: inline the present-line write (hit or word-grain
	// allocate); an absent line needs the scheme's write-validate frame
	// allocation and eviction accounting, so it takes the scalar path.
	tag, w := c.CC.Split(addr)
	l := c.line
	if l == nil || l.Tag != tag || l.State == cache.Invalid {
		l, _, _ = c.CC.Lookup(addr)
		c.line = l
	}
	if l == nil {
		st := c.Ln.St
		hitsBefore := st.WriteHits
		missBefore := st.WriteMisses
		stall := c.Sys.Write(c.Proc, addr, val, false)
		class := int8(-1)
		if st.WriteHits == hitsBefore {
			for i := range st.WriteMisses {
				if st.WriteMisses[i] != missBefore[i] {
					class = int8(i)
					break
				}
			}
		}
		// The allocation just installed a line; find it on the next access.
		return stall, class
	}
	ln := c.Ln
	c.n++
	ln.Write(addr, val, c.Proc, c.Epoch)
	hit := l.TT[w] != cache.TTInvalid
	class := int8(-1)
	if hit {
		c.hits++
	} else {
		// Classify before the tracker below records the new residency.
		cls := c.Core.ClassifyMissLane(ln, c.Tr, addr)
		ln.St.WriteMisses[cls]++
		class = int8(cls)
	}
	l.Vals[w] = val
	if c.PromoteTT {
		if l.TT[w] < c.WTT || l.TT[w] == cache.TTInvalid {
			l.TT[w] = c.WTT
		}
	} else {
		l.TT[w] = c.WTT
	}
	l.Used[w] = true
	c.CC.Touch(l)
	c.Tr.NoteCached(addr)
	if c.WriteBack {
		l.DirtyW[w] = true
		return 0, class
	}
	if c.WB.Write(addr) {
		c.traffic++
	} else {
		c.coalesced++
	}
	if c.SeqC {
		lat := c.Core.WordMissLatencyFor(c.Proc, addr)
		if !hit {
			c.missLatSum += lat
		}
		return lat, class
	}
	return 0, class
}
