package memsys

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/stats"
)

func testCfg() machine.Config {
	c := machine.Default(machine.SchemeTPI)
	c.Procs = 2
	c.CacheWords = 64
	return c
}

func TestNewCoreRoundsMemoryToLines(t *testing.T) {
	c := testCfg()
	c.LineWords = 8
	core := NewCore(c, 13)
	if core.Memory.Size() != 16 {
		t.Fatalf("memory size = %d, want 16 (rounded to 8-word lines)", core.Memory.Size())
	}
}

func TestClassifyMissCold(t *testing.T) {
	core := NewCore(testCfg(), 64)
	tr := cache.NewTracker(64)
	if got := core.ClassifyMiss(tr, 5); got != stats.MissCold {
		t.Fatalf("unseen word: %v", got)
	}
}

func TestClassifyMissReplaceAndInval(t *testing.T) {
	core := NewCore(testCfg(), 64)
	tr := cache.NewTracker(64)
	tr.NoteCached(5)
	tr.NoteLost(5, cache.LostReplaced, 3)
	if got := core.ClassifyMiss(tr, 5); got != stats.MissReplace {
		t.Fatalf("replaced word: %v", got)
	}
	tr.NoteLost(5, cache.LostInvalTrue, 3)
	if got := core.ClassifyMiss(tr, 5); got != stats.MissTrueSharing {
		t.Fatalf("true inval: %v", got)
	}
	tr.NoteLost(5, cache.LostInvalFalse, 3)
	if got := core.ClassifyMiss(tr, 5); got != stats.MissFalseSharing {
		t.Fatalf("false inval: %v", got)
	}
}

func TestClassifyMissResetDependsOnActualChange(t *testing.T) {
	core := NewCore(testCfg(), 64)
	tr := cache.NewTracker(64)
	tr.NoteCached(5)
	tr.NoteLost(5, cache.LostReset, 3)
	// no write since tt=3: artifact of the reset -> conservative
	if got := core.ClassifyMiss(tr, 5); got != stats.MissConservative {
		t.Fatalf("fresh reset loss: %v", got)
	}
	core.Memory.Write(5, 1.0, 0, 7)
	if got := core.ClassifyMiss(tr, 5); got != stats.MissTrueSharing {
		t.Fatalf("stale reset loss: %v", got)
	}
}

func TestMissFillTimetagsAndEviction(t *testing.T) {
	cfg := testCfg()
	core := NewCore(cfg, 256)
	cc := cache.New(cfg.CacheWords, cfg.LineWords, cfg.Assoc)
	tr := cache.NewTracker(core.Memory.Size())
	core.Memory.InitWord(8, 2.5)

	line, w := core.MissFill(cc, tr, 9, 10, 9)
	if w != 1 || line.TT[1] != 10 {
		t.Fatalf("accessed word tt = %d at %d", line.TT[1], w)
	}
	if line.TT[0] != 9 || line.TT[2] != 9 || line.TT[3] != 9 {
		t.Fatalf("neighbour tts = %v", line.TT)
	}
	if line.Vals[0] != 2.5 {
		t.Fatal("fill must bring memory data")
	}
	for i := 0; i < 4; i++ {
		if !tr.Seen(prog.Word(8 + i)) {
			t.Fatalf("word %d not tracked", 8+i)
		}
	}

	// Conflicting fill evicts and records replacement losses.
	core.MissFill(cc, tr, 9+64, 11, 10)
	r, tt := tr.Lost(9)
	if r != cache.LostReplaced || tt != 10 {
		t.Fatalf("eviction loss = %v/%d", r, tt)
	}
}

func TestLatencyHelpers(t *testing.T) {
	core := NewCore(testCfg(), 64)
	if core.LineMissLatency() <= core.Cfg.MissCycles {
		t.Fatal("line miss latency must include network time")
	}
	if core.WordMissLatency() >= core.LineMissLatency() {
		t.Fatal("word fetch must be cheaper than line fetch")
	}
}

func TestOracleSemantics(t *testing.T) {
	cfg := testCfg()
	o := NewOracle(cfg, 64)
	o.EpochBoundary(3)
	if stall := o.Write(1, 10, 2.5, false); stall != 0 {
		t.Fatal("oracle writes are free")
	}
	v, stall := o.Read(0, 10, ReadTime, 0)
	if v != 2.5 || stall != 0 {
		t.Fatalf("oracle read = %v/%d", v, stall)
	}
	if o.Memory.LastWriteEpoch(10) != 3 {
		t.Fatal("oracle must keep provenance")
	}
	if o.Name() != "ORACLE" {
		t.Fatal("name")
	}
}

func TestReadKindString(t *testing.T) {
	if ReadRegular.String() != "regular-read" || ReadTime.String() != "time-read" ||
		ReadBypass.String() != "bypass-read" {
		t.Fatal("ReadKind strings")
	}
}

// Compile-time interface conformance for every scheme implementation is
// asserted in their own packages; here we pin the oracle.
var _ System = (*Oracle)(nil)
