package memsys

// Host-parallel epoch execution support.
//
// A DOALL epoch has no cross-iteration dependences, writes drain at the
// epoch boundary, and the coherence decisions of the shardable schemes
// (BASE, SC, TPI) are purely processor-local: timetags and bypass bits
// involve no mid-epoch cross-processor messages. That property makes the
// *simulation* of one epoch parallelizable across host goroutines without
// changing a single simulated cycle — work inside an epoch may be
// reordered freely as long as it re-serializes at the barrier.
//
// A Lane is one simulated processor's view of the state that is otherwise
// shared between processors: the stats counters, the network-injection
// accounting, and the authoritative memory. In sequential execution every
// processor uses the single pass-through lane, which writes straight
// through to the shared state — the pre-lane behavior, bit for bit. Inside
// a host-parallel epoch each processor gets a private buffered lane:
//
//   - counters accumulate into a private stats.Stats shard, summed into
//     the shared Stats at the barrier (integer sums are order-free, so
//     the totals are bit-identical to sequential execution);
//   - network injections accumulate into a private word counter, injected
//     into the shared model once at the barrier — the Kruskal–Snir EWMA
//     only advances at AdvanceTo, so mid-epoch delay lookups are
//     read-only and identical in both modes;
//   - stores append to a private write log and are applied to memory at
//     the barrier in (processor, sequence) order. DOALL independence
//     guarantees per-epoch write-sets are pairwise disjoint across
//     processors (asserted by TestDoallWriteSetsDisjoint), so the final
//     memory image is the sequential one. Reads forward from the lane's
//     own log first (store-buffer forwarding), so a processor always sees
//     its own same-epoch writes even after a conflict eviction.
//
// Schemes opt in by implementing HostShardable and routing every
// reference-path access to shared state through LaneFor(p). Schemes whose
// reference paths *observe memory values* mid-epoch beyond the accessed
// word (the HW directory fills whole lines; VC compares cached values
// against memory to split true-sharing from conservative misses) would
// see different neighbor values in pass-through mode (memory already
// holds other processors' same-epoch stores) than in buffered mode. Those
// schemes call EnableAlwaysBuffered at construction: every epoch runs on
// buffered lanes in BOTH sequential and host-parallel execution, and the
// merge is deferred to FlushEpoch at the simulator's epoch barrier — one
// canonical memory-visibility rule, so the two modes are bit-identical by
// construction. Cross-processor *protocol* state (the directory's sharer
// lists) is handled by the scheme itself: mutations are logged per lane
// mid-epoch and replayed in (processor, sequence) order inside its
// FlushEpoch override (see internal/directory).

import (
	"fmt"
	"sync"

	"repro/internal/memory"
	"repro/internal/network"
	"repro/internal/prog"
	"repro/internal/stats"
)

// laneWrite is one buffered store of a host-parallel epoch.
type laneWrite struct {
	addr prog.Word
	val  float64
}

// Lane is a per-processor view of the cross-processor run state. The
// reference paths of shardable schemes go through a lane for every
// counter update, network injection, and memory access.
type Lane struct {
	// St receives the scheme's reference counters: the shared run Stats
	// in pass-through mode, a private shard inside a parallel epoch.
	St *stats.Stats

	mem      *memory.Memory
	net      network.Net // pass-through target; nil when buffered
	buffered bool
	proc     int
	epoch    int64
	inj      int64
	writes   []laneWrite
	overlay  map[prog.Word]int32 // addr -> index of latest entry in writes
	stShard  stats.Stats         // backing store for St in buffered mode
}

// Inject records words entering the network: straight to the model in
// pass-through mode, batched until the barrier in buffered mode.
func (l *Lane) Inject(words int64) {
	if l.buffered {
		l.inj += words
		return
	}
	l.net.Inject(words)
}

// FreshWords returns the authoritative word store for inlining the
// staleness-oracle compare, or nil when the lane is buffered (a buffered
// lane must consult its own write log first, so callers fall back to
// CheckFresh). Read-only by contract.
func (l *Lane) FreshWords() []float64 {
	if l.buffered {
		return nil
	}
	return l.mem.Words()
}

// Value returns the current value of a word as this processor must see
// it: its own buffered same-epoch store if one exists, else memory.
func (l *Lane) Value(addr prog.Word) float64 {
	if l.buffered {
		if i, ok := l.overlay[addr]; ok {
			return l.writes[i].val
		}
	}
	return l.mem.Read(addr)
}

// LastWriteEpoch mirrors memory.LastWriteEpoch through the write buffer.
func (l *Lane) LastWriteEpoch(addr prog.Word) int64 {
	if l.buffered {
		if _, ok := l.overlay[addr]; ok {
			return l.epoch
		}
	}
	return l.mem.LastWriteEpoch(addr)
}

// Write performs a store: straight through in pass-through mode, logged
// for the barrier in buffered mode (with forwarding for later reads).
func (l *Lane) Write(addr prog.Word, val float64, proc int, epoch int64) {
	if !l.buffered {
		l.mem.Write(addr, val, proc, epoch)
		return
	}
	l.epoch = epoch
	if i, ok := l.overlay[addr]; ok {
		// Same-word rewrite: keep one log entry per word (the barrier
		// applies the last value; intermediate values are unobservable
		// because only this processor may touch the word this epoch).
		l.writes[i].val = val
		return
	}
	l.overlay[addr] = int32(len(l.writes))
	l.writes = append(l.writes, laneWrite{addr: addr, val: val})
}

// WriteThrough performs a store that must be globally visible NOW — a
// critical-section (or ordered-section) store. Those only occur in
// sequential (seqOnly) epochs, so eager application is deterministic in
// both execution modes. If this processor has a buffered same-epoch store
// to the word, that log entry is withdrawn (overlay removed, slot turned
// into a skip sentinel): the proc-major barrier flush must not re-apply a
// pre-critical value over the program-order-final one — under cyclic
// scheduling several processors' critical stores to one word interleave
// in iteration order, not processor order.
func (l *Lane) WriteThrough(addr prog.Word, val float64, proc int, epoch int64) {
	if l.buffered {
		if i, ok := l.overlay[addr]; ok {
			delete(l.overlay, addr)
			l.writes[i] = laneWrite{addr: -1}
		}
	}
	l.mem.Write(addr, val, proc, epoch)
}

// CheckFresh is the staleness oracle through the lane: a hit on a word
// this processor wrote this epoch must match the buffered value; any
// other hit must match authoritative memory.
func (l *Lane) CheckFresh(addr prog.Word, got float64, proc int, context string) {
	if l.buffered {
		if i, ok := l.overlay[addr]; ok {
			if got != l.writes[i].val {
				panic(fmt.Sprintf("memory: STALE READ by P%d at word %d: got %v, want %v (%s; unretired write by P%d at epoch %d)",
					proc, addr, got, l.writes[i].val, context, l.proc, l.epoch))
			}
			return
		}
	}
	l.mem.CheckFresh(addr, got, proc, context)
}

// Sharded is the host-parallel contract: a scheme that implements it
// with HostShardable() == true promises that, between BeginParallelEpoch
// and EndParallelEpoch, concurrent Read/Write calls for distinct
// processors touch only per-processor state (caches, trackers, write
// buffers) plus that processor's Lane. Begin/End and LaneStats come from
// Core; HostShardable is the explicit per-scheme opt-in (schemes with
// un-sharded mid-epoch state would override it to false).
type Sharded interface {
	System
	// HostShardable reports that the reference paths are lane-routed.
	HostShardable() bool
	// BeginParallelEpoch switches LaneFor to per-processor buffered
	// lanes for the epoch being entered.
	BeginParallelEpoch(epoch int64)
	// EndParallelEpoch performs the barrier merge: buffered writes apply
	// to memory in (processor, sequence) order, stats shards sum into
	// the shared Stats, and batched traffic injects into the network.
	EndParallelEpoch()
	// LaneStats exposes processor p's active counter sink (the shard
	// between Begin/End, the shared Stats otherwise).
	LaneStats(p int) *stats.Stats
}

// Buffered is implemented by systems whose epochs run on buffered lanes
// even in sequential execution (EnableAlwaysBuffered). The simulator
// calls FlushEpoch at the top of every epoch barrier — before barrier
// cycles are charged and the network clock advances — so lane merges and
// any deferred protocol replay happen at one canonical point in both
// execution modes.
type Buffered interface {
	System
	// EpochBuffered reports that epochs run on buffered lanes in every
	// execution mode and the simulator must call FlushEpoch at barriers.
	EpochBuffered() bool
	// FlushEpoch performs the barrier merge: buffered writes apply to
	// memory in (processor, sequence) order, stats shards sum, batched
	// traffic injects. Schemes with deferred protocol state (the HW
	// directory's action logs) override it to replay that state after
	// the lane merge, so the replay reads barrier-final memory.
	FlushEpoch()
}

// EnableAlwaysBuffered switches the core to always-buffered execution:
// LaneFor returns the processor's private buffered lane (built on first
// use) even outside host-parallel epochs. EndParallelEpoch then defers
// the merge to FlushEpoch, which the simulator invokes at every epoch
// barrier (in both execution modes). Call once, at construction.
func (c *Core) EnableAlwaysBuffered() {
	c.alwaysBuffered = true
	c.ensureLanes()
}

// EpochBuffered implements Buffered.
func (c *Core) EpochBuffered() bool { return c.alwaysBuffered }

// FlushEpoch implements Buffered.
func (c *Core) FlushEpoch() { c.FlushEpochLanes() }

// lanesPool recycles lane sets across runs: the write-log slices and
// overlay maps grow to an epoch's working set once and are then reused
// instead of reallocated per run (see memsys.Releaser).
var lanesPool sync.Pool

// ensureLanes installs the per-processor lane table. Individual lanes
// are built lazily by LaneFor on a processor's first reference, so a
// large-P configuration whose epochs touch few processors never pays
// P× lane (and overlay map) construction; pooled lane sets may carry
// nil entries for processors a previous run never touched.
func (c *Core) ensureLanes() {
	if c.lanes != nil {
		return
	}
	if v := lanesPool.Get(); v != nil {
		if ls, ok := v.([]*Lane); ok && len(ls) >= c.Cfg.Procs {
			c.lanes = ls[:c.Cfg.Procs]
			for p, l := range c.lanes {
				if l == nil {
					continue
				}
				l.mem = c.Memory
				l.proc = p
				l.epoch = c.laneEpoch
			}
			return
		}
	}
	c.lanes = make([]*Lane, c.Cfg.Procs)
}

// newLane builds processor p's buffered lane on first use. Inside a
// host-parallel epoch each processor is owned by exactly one worker, so
// concurrent calls write distinct slice elements — no synchronization
// is needed, exactly like the caches the workers allocate.
func (c *Core) newLane(p int) *Lane {
	l := &Lane{
		mem:      c.Memory,
		buffered: true,
		proc:     p,
		epoch:    c.laneEpoch,
		overlay:  make(map[prog.Word]int32),
	}
	l.St = &l.stShard
	c.lanes[p] = l
	return l
}

// ReleaseLanes returns the per-processor lanes to the shared pool for
// the next run. Each lane is scrubbed (log truncated, overlay cleared,
// shard zeroed, memory unbound) so a pooled lane can never leak one
// run's state into the next; schemes call this from ReleaseCaches.
func (c *Core) ReleaseLanes() {
	if c.lanes == nil {
		return
	}
	for _, l := range c.lanes {
		if l == nil {
			continue
		}
		l.mem = nil
		l.writes = l.writes[:0]
		clear(l.overlay)
		l.stShard = stats.Stats{}
		l.inj = 0
		l.epoch = 0
	}
	lanesPool.Put(c.lanes)
	c.lanes = nil
}

// LaneFor returns the lane processor p must route its references
// through: the shared pass-through lane in plain sequential execution,
// the processor's private buffered lane inside a host-parallel epoch or
// under always-buffered execution.
func (c *Core) LaneFor(p int) *Lane {
	if c.par || c.alwaysBuffered {
		if l := c.lanes[p]; l != nil {
			return l
		}
		return c.newLane(p)
	}
	return &c.seqLane
}

// BeginParallelEpoch implements Sharded.
func (c *Core) BeginParallelEpoch(epoch int64) {
	c.ensureLanes()
	c.laneEpoch = epoch
	for _, l := range c.lanes {
		if l != nil {
			l.epoch = epoch
		}
	}
	c.par = true
}

// SetLaneEpoch stamps every lane with the epoch being entered. Under
// always-buffered execution sequential epochs also buffer stores, so the
// scheme's EpochBoundary must forward the new epoch here for the logs'
// memory.Write epoch stamps to stay identical to pass-through execution.
func (c *Core) SetLaneEpoch(epoch int64) {
	c.laneEpoch = epoch
	for _, l := range c.lanes {
		if l != nil {
			l.epoch = epoch
		}
	}
}

// EndParallelEpoch implements Sharded. Under always-buffered execution
// the merge is deferred to FlushEpoch so sequential and host-parallel
// epochs drain at the same canonical point (the simulator's barrier).
func (c *Core) EndParallelEpoch() {
	c.par = false
	if c.alwaysBuffered {
		return
	}
	c.FlushEpochLanes()
}

// FlushEpochLanes applies each processor's buffered epoch state to the
// shared structures: write logs to memory in (processor, sequence) order
// — the deterministic serialization of the epoch; write-set disjointness
// makes it equal to the sequential interleaving — then stats shards and
// batched network traffic. Withdrawn entries (critical-section stores
// applied eagerly by WriteThrough) carry a negative address and are
// skipped.
func (c *Core) FlushEpochLanes() {
	for p, l := range c.lanes {
		if l == nil {
			continue
		}
		for _, w := range l.writes {
			if w.addr < 0 {
				continue
			}
			c.Memory.Write(w.addr, w.val, p, l.epoch)
		}
		l.writes = l.writes[:0]
		clear(l.overlay)
		c.St.Add(&l.stShard)
		l.stShard = stats.Stats{}
		if l.inj != 0 {
			c.Netw.Inject(l.inj)
			l.inj = 0
		}
	}
}

// LaneStats implements Sharded.
func (c *Core) LaneStats(p int) *stats.Stats {
	if c.par || c.alwaysBuffered {
		return c.LaneFor(p).St
	}
	return &c.St
}
