package memsys

// Host-parallel epoch execution support.
//
// A DOALL epoch has no cross-iteration dependences, writes drain at the
// epoch boundary, and the coherence decisions of the shardable schemes
// (BASE, SC, TPI) are purely processor-local: timetags and bypass bits
// involve no mid-epoch cross-processor messages. That property makes the
// *simulation* of one epoch parallelizable across host goroutines without
// changing a single simulated cycle — work inside an epoch may be
// reordered freely as long as it re-serializes at the barrier.
//
// A Lane is one simulated processor's view of the state that is otherwise
// shared between processors: the stats counters, the network-injection
// accounting, and the authoritative memory. In sequential execution every
// processor uses the single pass-through lane, which writes straight
// through to the shared state — the pre-lane behavior, bit for bit. Inside
// a host-parallel epoch each processor gets a private buffered lane:
//
//   - counters accumulate into a private stats.Stats shard, summed into
//     the shared Stats at the barrier (integer sums are order-free, so
//     the totals are bit-identical to sequential execution);
//   - network injections accumulate into a private word counter, injected
//     into the shared model once at the barrier — the Kruskal–Snir EWMA
//     only advances at AdvanceTo, so mid-epoch delay lookups are
//     read-only and identical in both modes;
//   - stores append to a private write log and are applied to memory at
//     the barrier in (processor, sequence) order. DOALL independence
//     guarantees per-epoch write-sets are pairwise disjoint across
//     processors (asserted by TestDoallWriteSetsDisjoint), so the final
//     memory image is the sequential one. Reads forward from the lane's
//     own log first (store-buffer forwarding), so a processor always sees
//     its own same-epoch writes even after a conflict eviction.
//
// Schemes opt in by implementing HostShardable and routing every
// reference-path access to shared state through LaneFor(p). Schemes with
// genuine mid-epoch cross-processor state (the HW directory, the
// version-control scheme, the two-level TPI's shared L1 counters) simply
// do not opt in and the simulator falls back to sequential execution.

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/network"
	"repro/internal/prog"
	"repro/internal/stats"
)

// laneWrite is one buffered store of a host-parallel epoch.
type laneWrite struct {
	addr prog.Word
	val  float64
}

// Lane is a per-processor view of the cross-processor run state. The
// reference paths of shardable schemes go through a lane for every
// counter update, network injection, and memory access.
type Lane struct {
	// St receives the scheme's reference counters: the shared run Stats
	// in pass-through mode, a private shard inside a parallel epoch.
	St *stats.Stats

	mem      *memory.Memory
	net      network.Net // pass-through target; nil when buffered
	buffered bool
	proc     int
	epoch    int64
	inj      int64
	writes   []laneWrite
	overlay  map[prog.Word]int32 // addr -> index of latest entry in writes
	stShard  stats.Stats         // backing store for St in buffered mode
}

// Inject records words entering the network: straight to the model in
// pass-through mode, batched until the barrier in buffered mode.
func (l *Lane) Inject(words int64) {
	if l.buffered {
		l.inj += words
		return
	}
	l.net.Inject(words)
}

// FreshWords returns the authoritative word store for inlining the
// staleness-oracle compare, or nil when the lane is buffered (a buffered
// lane must consult its own write log first, so callers fall back to
// CheckFresh). Read-only by contract.
func (l *Lane) FreshWords() []float64 {
	if l.buffered {
		return nil
	}
	return l.mem.Words()
}

// Value returns the current value of a word as this processor must see
// it: its own buffered same-epoch store if one exists, else memory.
func (l *Lane) Value(addr prog.Word) float64 {
	if l.buffered {
		if i, ok := l.overlay[addr]; ok {
			return l.writes[i].val
		}
	}
	return l.mem.Read(addr)
}

// LastWriteEpoch mirrors memory.LastWriteEpoch through the write buffer.
func (l *Lane) LastWriteEpoch(addr prog.Word) int64 {
	if l.buffered {
		if _, ok := l.overlay[addr]; ok {
			return l.epoch
		}
	}
	return l.mem.LastWriteEpoch(addr)
}

// Write performs a store: straight through in pass-through mode, logged
// for the barrier in buffered mode (with forwarding for later reads).
func (l *Lane) Write(addr prog.Word, val float64, proc int, epoch int64) {
	if !l.buffered {
		l.mem.Write(addr, val, proc, epoch)
		return
	}
	l.epoch = epoch
	if i, ok := l.overlay[addr]; ok {
		// Same-word rewrite: keep one log entry per word (the barrier
		// applies the last value; intermediate values are unobservable
		// because only this processor may touch the word this epoch).
		l.writes[i].val = val
		return
	}
	l.overlay[addr] = int32(len(l.writes))
	l.writes = append(l.writes, laneWrite{addr: addr, val: val})
}

// CheckFresh is the staleness oracle through the lane: a hit on a word
// this processor wrote this epoch must match the buffered value; any
// other hit must match authoritative memory.
func (l *Lane) CheckFresh(addr prog.Word, got float64, proc int, context string) {
	if l.buffered {
		if i, ok := l.overlay[addr]; ok {
			if got != l.writes[i].val {
				panic(fmt.Sprintf("memory: STALE READ by P%d at word %d: got %v, want %v (%s; unretired write by P%d at epoch %d)",
					proc, addr, got, l.writes[i].val, context, l.proc, l.epoch))
			}
			return
		}
	}
	l.mem.CheckFresh(addr, got, proc, context)
}

// Sharded is the host-parallel contract: a scheme that implements it
// with HostShardable() == true promises that, between BeginParallelEpoch
// and EndParallelEpoch, concurrent Read/Write calls for distinct
// processors touch only per-processor state (caches, trackers, write
// buffers) plus that processor's Lane. Begin/End and LaneStats come from
// Core; HostShardable is the explicit per-scheme opt-in so schemes that
// merely embed Core (HW directory, VC) stay sequential.
type Sharded interface {
	System
	// HostShardable reports that the reference paths are lane-routed.
	HostShardable() bool
	// BeginParallelEpoch switches LaneFor to per-processor buffered
	// lanes for the epoch being entered.
	BeginParallelEpoch(epoch int64)
	// EndParallelEpoch performs the barrier merge: buffered writes apply
	// to memory in (processor, sequence) order, stats shards sum into
	// the shared Stats, and batched traffic injects into the network.
	EndParallelEpoch()
	// LaneStats exposes processor p's active counter sink (the shard
	// between Begin/End, the shared Stats otherwise).
	LaneStats(p int) *stats.Stats
}

// LaneFor returns the lane processor p must route its references
// through: the shared pass-through lane in sequential execution, the
// processor's private buffered lane inside a host-parallel epoch.
func (c *Core) LaneFor(p int) *Lane {
	if c.par {
		return c.lanes[p]
	}
	return &c.seqLane
}

// BeginParallelEpoch implements Sharded.
func (c *Core) BeginParallelEpoch(epoch int64) {
	if c.lanes == nil {
		c.lanes = make([]*Lane, c.Cfg.Procs)
		for p := range c.lanes {
			l := &Lane{
				mem:      c.Memory,
				buffered: true,
				proc:     p,
				overlay:  make(map[prog.Word]int32),
			}
			l.St = &l.stShard
			c.lanes[p] = l
		}
	}
	for _, l := range c.lanes {
		l.epoch = epoch
	}
	c.par = true
}

// EndParallelEpoch implements Sharded. Applying each processor's write
// log in processor order is the deterministic serialization of the
// epoch; write-set disjointness makes it equal to the sequential
// interleaving.
func (c *Core) EndParallelEpoch() {
	c.par = false
	for p, l := range c.lanes {
		for _, w := range l.writes {
			c.Memory.Write(w.addr, w.val, p, l.epoch)
		}
		l.writes = l.writes[:0]
		clear(l.overlay)
		c.St.Add(&l.stShard)
		l.stShard = stats.Stats{}
		if l.inj != 0 {
			c.Netw.Inject(l.inj)
			l.inj = 0
		}
	}
}

// LaneStats implements Sharded.
func (c *Core) LaneStats(p int) *stats.Stats {
	if c.par {
		return c.lanes[p].St
	}
	return &c.St
}
