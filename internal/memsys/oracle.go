package memsys

import (
	"repro/internal/machine"
	"repro/internal/prog"
)

// Oracle is the reference memory system: no caches, no latency, direct
// authoritative memory. Running a program on the Oracle with one
// processor yields the sequential-semantics result that every coherence
// scheme must reproduce bit-for-bit.
type Oracle struct {
	*Core
}

// NewOracle builds the reference system.
func NewOracle(cfg machine.Config, memWords int64) *Oracle {
	o := &Oracle{Core: NewCore(cfg, memWords)}
	o.St.Scheme = "ORACLE"
	return o
}

// Name implements System.
func (o *Oracle) Name() string { return "ORACLE" }

// Read implements System.
func (o *Oracle) Read(p int, addr prog.Word, kind ReadKind, window int) (float64, int64) {
	o.St.Reads++
	return o.Memory.Read(addr), 0
}

// Write implements System.
func (o *Oracle) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	o.St.Writes++
	o.Memory.Write(addr, val, p, o.Epoch)
	return 0
}

// EpochBoundary implements System.
func (o *Oracle) EpochBoundary(epoch int64) int64 {
	o.Epoch = epoch
	return 0
}
