// Package memsys defines the interface between the execution-driven
// simulator and a coherence scheme's memory system, plus helpers shared
// by the scheme implementations (miss classification, fill/evict logic,
// network-latency accounting).
//
// All schemes move real float64 values: the simulator reads through the
// simulated caches, so any coherence bug corrupts the computation and is
// caught by the sequential-equivalence tests and the staleness oracle.
package memsys

import (
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/network"
	"repro/internal/prog"
	"repro/internal/stats"
)

// ReadKind tells the memory system how the compiler marked a read.
type ReadKind int

const (
	// ReadRegular is an ordinary load.
	ReadRegular ReadKind = iota
	// ReadTime is a Time-Read with an epoch window.
	ReadTime
	// ReadBypass always fetches from memory.
	ReadBypass
)

func (k ReadKind) String() string {
	switch k {
	case ReadRegular:
		return "regular-read"
	case ReadTime:
		return "time-read"
	case ReadBypass:
		return "bypass-read"
	default:
		return "?"
	}
}

// HitContext is String()+" hit" without the per-call concatenation (it
// labels every cache hit's freshness check, a hot path).
func (k ReadKind) HitContext() string {
	switch k {
	case ReadRegular:
		return "regular-read hit"
	case ReadTime:
		return "time-read hit"
	case ReadBypass:
		return "bypass-read hit"
	default:
		return "? hit"
	}
}

// System is a coherence scheme's memory system for one machine.
type System interface {
	// Name returns the scheme name ("TPI", "HW", ...).
	Name() string
	// Read performs a load by processor p and returns the value and the
	// processor stall in cycles. window is the Time-Read epoch window
	// (ReadTime only).
	Read(p int, addr prog.Word, kind ReadKind, window int) (float64, int64)
	// Write performs a store by processor p and returns the processor
	// stall in cycles (usually 0: writes are buffered under weak
	// consistency). crit marks critical-section stores, which must be
	// immediately visible to same-epoch bypass readers and must not leave
	// epoch-fresh copies behind in HSCD caches.
	Write(p int, addr prog.Word, val float64, crit bool) int64
	// EpochBoundary announces the global barrier advancing the epoch
	// counter to epoch; it returns any extra stall applied to every
	// processor (e.g. a two-phase timetag reset).
	EpochBoundary(epoch int64) int64
	// Mem exposes the authoritative memory (for initialization and
	// end-of-run result extraction).
	Mem() *memory.Memory
	// Stats exposes the run's measurements.
	Stats() *stats.Stats
	// Net exposes the network model (the simulator advances its clock).
	Net() network.Net
}

// Releaser is implemented by systems whose per-processor cache
// structures can be returned to their construction pools once a run's
// results have been fully extracted (stats, memory snapshot, invariant
// checks). core calls it at the end of each Run*; a released system must
// not be used again.
type Releaser interface {
	// ReleaseCaches returns the caches and trackers to their pools.
	ReleaseCaches()
}

// Versioned is implemented by schemes that track per-variable version
// numbers (the Cheong–Veidenbaum version-control scheme): the simulator
// reports, at each epoch boundary, which variables the finished epoch may
// have modified.
type Versioned interface {
	// EpochMods announces the (global) array/scalar names the epoch that
	// just finished may have written; the scheme advances their current
	// version numbers.
	EpochMods(names []string)
}

// Probe receives coherence-protocol events that happen outside the
// processor's own reference stream (so the simulator's read/write hooks
// cannot see them). Calls are rare — per invalidation or per reset phase,
// never per reference — so implementations may do real work. Schemes hold
// a nil Probe by default and must guard every call.
type Probe interface {
	// Invalidation reports that writer's store to addr invalidated the
	// copy held by processor victim; class is MissTrueSharing if the
	// victim had referenced that word, MissFalseSharing otherwise, or
	// MissReplace for capacity-driven sharer eviction (limited pointers).
	Invalidation(writer, victim int, addr prog.Word, class stats.MissClass)
	// TimetagReset reports a timetag reset phase at an epoch boundary
	// that invalidated words cache words across all processors.
	TimetagReset(epoch int64, words int64)
}

// Probed is implemented by schemes that can deliver Probe events.
type Probed interface {
	SetProbe(Probe)
}

// Core bundles the state every scheme implementation shares.
type Core struct {
	Cfg    machine.Config
	Memory *memory.Memory
	Netw   network.Net
	St     stats.Stats
	Epoch  int64

	// Probe, when non-nil, observes coherence events (see Probe).
	Probe Probe

	// Host-parallel lane state (see lane.go). seqLane passes through to
	// the shared state above; lanes holds the per-processor buffered
	// lanes, allocated lazily on the first parallel epoch (eagerly under
	// alwaysBuffered). par flips only while the simulator is
	// single-threaded (before goroutine spawn / after join), so LaneFor
	// needs no synchronization. alwaysBuffered (EnableAlwaysBuffered)
	// makes sequential epochs buffer too, with the merge deferred to
	// FlushEpoch at the simulator's barrier.
	seqLane        Lane
	lanes          []*Lane
	laneEpoch      int64
	par            bool
	alwaysBuffered bool

	// Mesh home mapping: homeClusters > 0 interleaves memory lines
	// across per-cluster home slices instead of individual processors,
	// and clusterWords tallies the fetch traffic each home slice served
	// (updated atomically: host-parallel workers charge misses
	// concurrently, and order-free sums keep the totals deterministic).
	// Zero/nil outside the mesh topology.
	homeClusters int
	clusterSize  int
	clusterWords []int64
}

// SetProbe implements Probed.
func (c *Core) SetProbe(p Probe) { c.Probe = p }

// NewCore builds the shared state for a scheme. The memory extent is
// rounded up to a whole number of cache lines so line fills at the end of
// the data segment stay in bounds (the padding words belong to no array).
func NewCore(cfg machine.Config, memWords int64) *Core {
	lw := int64(cfg.LineWords)
	if lw > 0 {
		memWords = (memWords + lw - 1) / lw * lw
	}
	c := &Core{
		Cfg:    cfg,
		Memory: memory.New(memWords),
	}
	switch cfg.Topology {
	case "torus":
		c.Netw = network.NewTorus(cfg.Procs)
	case "mesh":
		c.clusterSize = cfg.MeshClusterSize()
		c.homeClusters = cfg.Clusters()
		c.clusterWords = make([]int64, c.homeClusters)
		c.Netw = network.NewMesh(cfg.Procs, c.clusterSize)
	default:
		c.Netw = network.New(cfg.Procs, cfg.SwitchArity)
	}
	c.St.Scheme = cfg.Scheme.String()
	c.seqLane = Lane{St: &c.St, mem: c.Memory, net: c.Netw}
	return c
}

// Mem implements System.
func (c *Core) Mem() *memory.Memory { return c.Memory }

// Stats implements System.
func (c *Core) Stats() *stats.Stats { return &c.St }

// Net implements System.
func (c *Core) Net() network.Net { return c.Netw }

// HomeOf returns the memory module (home node) of a word: lines are
// interleaved across the processors' local memories, as on the T3D —
// or, under the clustered mesh, across the clusters' home slices (the
// home is the cluster's first processor; every processor of the
// cluster is the same mesh node, so any representative gives the same
// network distance).
func (c *Core) HomeOf(addr prog.Word) int {
	line := int64(addr) / int64(c.Cfg.LineWords)
	if c.homeClusters > 0 {
		return int(line%int64(c.homeClusters)) * c.clusterSize
	}
	return int(line % int64(c.Cfg.Procs))
}

// ClusterTraffic exposes per-cluster home-slice fetch traffic for
// topologies with clustered home slices (the mesh); every Core-based
// system implements it, returning nil outside the mesh topology.
type ClusterTraffic interface {
	ClusterHomeWords() []int64
}

// ClusterHomeWords implements ClusterTraffic: a copy of the cumulative
// words fetched from each mesh cluster's home slice, nil outside the
// mesh topology. Reads are atomic, so sampling mid-run is safe; at
// epoch barriers the totals are deterministic (order-free sums).
func (c *Core) ClusterHomeWords() []int64 {
	if c.clusterWords == nil {
		return nil
	}
	out := make([]int64, len(c.clusterWords))
	for i := range c.clusterWords {
		out[i] = atomic.LoadInt64(&c.clusterWords[i])
	}
	return out
}

// noteHomeFetch charges a home-slice fetch of the given payload against
// the home's cluster (mesh only; no-op elsewhere).
func (c *Core) noteHomeFetch(home int, words int64) {
	if c.clusterWords != nil {
		atomic.AddInt64(&c.clusterWords[home/c.clusterSize], words)
	}
}

// ClassifyMiss decides the miss class for a word that is absent from
// processor p's cache, using the per-word tracker history and, for words
// lost to resets, whether the data actually changed since.
func (c *Core) ClassifyMiss(tr *cache.Tracker, addr prog.Word) stats.MissClass {
	return c.ClassifyMissLane(&c.seqLane, tr, addr)
}

// ClassifyMissLane is ClassifyMiss through a lane: write-epoch provenance
// for reset losses must see the processor's own buffered same-epoch
// stores.
func (c *Core) ClassifyMissLane(ln *Lane, tr *cache.Tracker, addr prog.Word) stats.MissClass {
	if !tr.Seen(addr) {
		return stats.MissCold
	}
	reason, lostTT := tr.Lost(addr)
	switch reason {
	case cache.LostReplaced:
		return stats.MissReplace
	case cache.LostInvalTrue:
		return stats.MissTrueSharing
	case cache.LostInvalFalse:
		return stats.MissFalseSharing
	case cache.LostReset:
		// A reset dropped the word; if nobody wrote it since the copy was
		// made, the re-fetch is a pure artifact of the small timetag.
		if ln.LastWriteEpoch(addr) > lostTT {
			return stats.MissTrueSharing
		}
		return stats.MissConservative
	default:
		// Seen but never recorded as lost: a word-grain hole in a present
		// line (e.g. write-validate fill neighbours): treat as cold.
		return stats.MissCold
	}
}

// MissFill fills the whole line containing addr into cacheC for processor
// p with fresh memory data, evicting as needed, and returns the line and
// word index. Timetags: the accessed word gets ttAccessed, its neighbours
// ttNeighbour (the TPI fill rule; write-through schemes pass the epoch for
// both). The tracker records eviction losses and the new residency.
func (c *Core) MissFill(cc *cache.Cache, tr *cache.Tracker, addr prog.Word, ttAccessed, ttNeighbour int64) (*cache.Line, int) {
	return c.FillLane(&c.seqLane, cc, tr, addr, ttAccessed, ttNeighbour)
}

// FillLane is MissFill through a lane: fill data comes from the lane so a
// processor refetching a line it stored to this epoch (write-validate
// eviction followed by a read) sees its own buffered values.
func (c *Core) FillLane(ln *Lane, cc *cache.Cache, tr *cache.Tracker, addr prog.Word, ttAccessed, ttNeighbour int64) (*cache.Line, int) {
	v := cc.Victim(addr)
	if v.State != cache.Invalid {
		c.evict(cc, tr, v)
	}
	tag, w := cc.Split(addr)
	base := cc.LineBase(addr)
	v.Tag = tag
	v.State = cache.Shared
	v.Dirty = false
	for i := 0; i < cc.LineWords(); i++ {
		a := base + prog.Word(i)
		v.Vals[i] = ln.Value(a)
		if i == w {
			v.TT[i] = ttAccessed
		} else {
			v.TT[i] = ttNeighbour
		}
		v.Used[i] = false
		tr.NoteCached(a)
	}
	v.Used[w] = true
	cc.Touch(v)
	return v, w
}

// evict records the loss of every valid word of a victim line.
func (c *Core) evict(cc *cache.Cache, tr *cache.Tracker, v *cache.Line) {
	base := prog.Word(v.Tag * int64(cc.LineWords()))
	for i := 0; i < cc.LineWords(); i++ {
		if v.TT[i] != cache.TTInvalid {
			tr.NoteLost(base+prog.Word(i), cache.LostReplaced, v.TT[i])
		}
	}
	v.InvalidateLine()
}

// LineMissLatency is the read-miss stall: base miss cost plus a request
// out and a line-sized reply back through the network (average distance).
func (c *Core) LineMissLatency() int64 {
	return c.Cfg.MissCycles + c.Netw.RoundTrip(c.Cfg.LineWords)
}

// LineMissLatencyFor is the distance-aware variant: the request travels
// from processor p to the word's home node and the line travels back.
func (c *Core) LineMissLatencyFor(p int, addr prog.Word) int64 {
	home := c.HomeOf(addr)
	c.noteHomeFetch(home, int64(c.Cfg.LineWords)+1)
	return c.Cfg.MissCycles + c.Netw.RoundTripBetween(p, home, c.Cfg.LineWords)
}

// WordMissLatency is the stall of an uncached single-word fetch
// (average distance).
func (c *Core) WordMissLatency() int64 {
	return c.Cfg.MissCycles + c.Netw.RoundTrip(1)
}

// WordMissLatencyFor is the distance-aware single-word fetch.
func (c *Core) WordMissLatencyFor(p int, addr prog.Word) int64 {
	home := c.HomeOf(addr)
	c.noteHomeFetch(home, 2)
	return c.Cfg.MissCycles + c.Netw.RoundTripBetween(p, home, 1)
}

// CounterSample is a point-in-time aggregate of a run's memory-system
// counters, cheap enough to take at every epoch barrier. The simulator
// samples it for its progress callback (see sim.Progress) only after the
// barrier's lane flush and merge, so the hot reference path stays
// untouched and the sampled totals are exactly the sequential-equivalent
// counters at that epoch. All fields are monotonically non-decreasing
// over a run, so consumers may export successive samples as counter
// deltas.
type CounterSample struct {
	Reads, Writes           int64
	ReadHits, WriteHits     int64
	ReadMisses, WriteMisses int64
	Invalidations           int64
	CoherenceMsgs           int64
	TrafficWords            int64
	// LeaseRenewals counts Tardis timestamp-only lease renewals; zero
	// under every non-Tardis scheme.
	LeaseRenewals int64
}

// SampleStats aggregates a scheme's live stats into a CounterSample.
// Call only at an epoch barrier (after Buffered.FlushEpoch or
// Sharded.EndParallelEpoch have merged the per-lane shards); mid-epoch
// the totals of lane-buffered schemes are still in flight.
func SampleStats(st *stats.Stats) CounterSample {
	return CounterSample{
		Reads:         st.Reads,
		Writes:        st.Writes,
		ReadHits:      st.ReadHits,
		WriteHits:     st.WriteHits,
		ReadMisses:    st.TotalReadMisses(),
		WriteMisses:   st.TotalWriteMisses(),
		Invalidations: st.Invalidations,
		CoherenceMsgs: st.CoherenceMsgs,
		TrafficWords:  st.TotalTraffic(),
		LeaseRenewals: st.LeaseRenewals,
	}
}
