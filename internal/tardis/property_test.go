package tardis

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
)

// The property tests drive a Tardis system directly — no compiler, no
// simulator — with randomized barrier-synchronized access patterns, and
// check at every access and every barrier the invariants the Tardis
// correctness proof rests on:
//
//   - value correctness: a read returns exactly what the sequential
//     (shadow-model) execution would — leases never let a stale value
//     through, writes always expire remote copies by the next barrier;
//   - wts <= rts on every line, and wts never ahead of the global clock
//     (CheckInvariants, here at EVERY barrier rather than end-of-run);
//   - the global logical clock is monotone and every processor clock
//     folds back into it at the barrier (pts(p) == gts after replay);
//   - read-within-lease (the proof's pts <= rts at every load): any
//     line read during an epoch ends that epoch with rts at or past the
//     epoch's gts — the reader's effective clock at access time.
//
// Access patterns obey the DOALL contract the simulator guarantees:
// word-grain ownership rotates with the epoch, only a word's owner may
// write it, and a word written in an epoch is read by no one else that
// epoch (false sharing — distinct words of one line — is exercised
// freely). Serial epochs mix in critical-section stores and bypass
// reads through processor 0.

const propMemWords = 256

// propHarness drives one configuration for a fixed number of epochs.
func propHarness(t *testing.T, cfg machine.Config, seed int64, epochs int64) {
	t.Helper()
	s := New(cfg, propMemWords)
	defer s.ReleaseCaches()

	rng := rand.New(rand.NewSource(seed))
	mem := s.Memory.Size()
	shadow := make([]float64, mem)
	P := cfg.Procs
	lineWords := int64(cfg.LineWords)

	s.EpochBoundary(0)
	prevGTS := s.GTS()
	val := 0.0
	nextVal := func() float64 { val++; return val }

	for e := int64(0); e < epochs; e++ {
		gtsStart := s.GTS()
		readLines := map[int64]bool{}

		if rng.Intn(8) == 0 {
			// Serial epoch: processor 0 runs critical-section stores
			// (globally visible immediately) and bypass reads.
			for i := 0; i < 24; i++ {
				w := prog.Word(rng.Int63n(mem))
				if rng.Intn(2) == 0 {
					v := nextVal()
					s.Write(0, w, v, true)
					shadow[w] = v
				} else {
					got, _ := s.Read(0, w, memsys.ReadBypass, 0)
					if got != shadow[w] {
						t.Fatalf("epoch %d: bypass read of word %d = %v, want %v", e, w, got, shadow[w])
					}
				}
			}
		} else {
			// DOALL epoch. Word w's owner this epoch is (w+e) mod P; plan
			// the write set first so readers can avoid written words.
			owner := func(w prog.Word) int { return int((int64(w) + e) % int64(P)) }
			written := map[prog.Word]float64{}
			var writeOrder []prog.Word
			for w := prog.Word(0); int64(w) < mem; w++ {
				if rng.Intn(6) == 0 {
					written[w] = nextVal()
					writeOrder = append(writeOrder, w)
				}
			}
			for p := 0; p < P; p++ {
				for i, n := 0, 8+rng.Intn(24); i < n; i++ {
					w := prog.Word(rng.Int63n(mem))
					if v, isWritten := written[w]; isWritten {
						if owner(w) == p {
							s.Write(p, w, v, false)
						}
						continue
					}
					got, _ := s.Read(p, w, memsys.ReadRegular, 0)
					if got != shadow[w] {
						t.Fatalf("epoch %d: P%d read word %d = %v, want %v (gts %d)",
							e, p, w, got, shadow[w], s.GTS())
					}
					readLines[int64(w)/lineWords] = true
				}
			}
			// Every planned write lands at least once (deterministic order).
			for _, w := range writeOrder {
				s.Write(owner(w), w, written[w], false)
			}
			for _, w := range writeOrder {
				shadow[w] = written[w]
			}
		}

		s.FlushEpoch()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("epoch %d barrier: %v", e, err)
		}
		if g := s.GTS(); g < prevGTS {
			t.Fatalf("epoch %d: gts went backwards: %d -> %d", e, prevGTS, g)
		}
		prevGTS = s.GTS()
		for p := 0; p < P; p++ {
			if s.PTS(p) != s.GTS() {
				t.Fatalf("epoch %d: P%d pts %d not folded into gts %d at barrier",
					e, p, s.PTS(p), s.GTS())
			}
		}
		// Read-within-lease: every line read this epoch was leased to at
		// least the reader's clock, so its home rts ends the epoch at or
		// past the epoch's gts.
		for l := range readLines {
			if _, rts := s.LineTimestamps(l); rts < gtsStart {
				t.Fatalf("epoch %d: read line %d ends with rts %d < epoch gts %d",
					e, l, rts, gtsStart)
			}
		}
		s.EpochBoundary(e + 1)
	}
}

// TestPropertyInvariants sweeps both Tardis variants across processor
// counts, seeds, and a cache small enough to force evictions and (under
// TARDIS2) dirty silent-store writebacks.
func TestPropertyInvariants(t *testing.T) {
	for _, scheme := range []machine.Scheme{machine.SchemeTardis, machine.SchemeTardis2} {
		for _, procs := range []int{4, 13} {
			for _, small := range []bool{false, true} {
				for seed := int64(1); seed <= 3; seed++ {
					scheme, procs, small, seed := scheme, procs, small, seed
					name := fmt.Sprintf("%s/p%d/small=%v/seed%d", scheme, procs, small, seed)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						cfg := machine.Default(scheme)
						cfg.Procs = procs
						if small {
							// 8 lines direct-mapped: heavy conflict misses.
							cfg.CacheWords = 8 * int64(cfg.LineWords)
						}
						propHarness(t, cfg, seed, 64)
					})
				}
			}
		}
	}
}

// TestPropertyShortLease stresses lease expiry: with the minimum lease
// every cached copy expires at the next barrier, so renewals and the
// lease-expired miss class dominate. The backoff/prediction knobs are
// pinned on to walk hist across its whole [minHist, maxHist] range.
func TestPropertyShortLease(t *testing.T) {
	cfg := machine.Default(machine.SchemeTardis2)
	cfg.Procs = 8
	cfg.LeaseEpochs = 1
	cfg.LeaseMax = 4
	propHarness(t, cfg, 7, 96)
}

// TestPropertyLongLease stresses the opposite corner: leases far longer
// than the run, so copies essentially never expire on their own and
// correctness rides entirely on writes jumping wts past every lease.
func TestPropertyLongLease(t *testing.T) {
	cfg := machine.Default(machine.SchemeTardis)
	cfg.Procs = 8
	cfg.LeaseEpochs = 1 << 12
	cfg.LeaseMax = 1 << 13
	propHarness(t, cfg, 11, 96)
}

// TestPropertyWideTimestamps runs the harness on the wide home tier,
// proving the invariants are representation-independent.
func TestPropertyWideTimestamps(t *testing.T) {
	ForceWideTimestamps = true
	defer func() { ForceWideTimestamps = false }()
	cfg := machine.Default(machine.SchemeTardis2)
	cfg.Procs = 8
	propHarness(t, cfg, 13, 64)
}
