package tardis

// Home-directory timestamp storage. Every memory line owns one entry of
// Tardis home state: the write timestamp wts, the read lease bound rts,
// and the small lease-prediction history counter hist. Like the HW
// directory's two-tier presence sets, the representation is two-tier:
//
//   - narrow: one packed uint64 per line — wts in the low 40 bits, the
//     (always non-negative, because wts <= rts) lease delta rts-wts in
//     the next 16, and hist in the top 8. This is the steady state: a
//     40-bit logical clock outlasts any bounded run, and lease deltas
//     are capped by LeaseMax in every default configuration.
//   - wide: three flat slices (wts, rts []int64; hist []int8), entered
//     the moment any value outgrows the packed ranges (a logical clock
//     past 2^40, or an explicit LeaseMax beyond 2^16).
//
// The representation is pure storage: both tiers hold the same logical
// values, so simulation results are bit-identical either way
// (TestWideTimestampsBitIdentical), exactly like ForceWidePresence in
// internal/directory. ForceWideTimestamps pins the wide tier from
// construction so tests can compare the two.

// ForceWideTimestamps makes every new home table start in the wide
// representation (testing hook, mirroring directory.ForceWidePresence).
var ForceWideTimestamps = false

const (
	narrowWtsBits   = 40
	narrowDeltaBits = 16
	narrowWtsMax    = int64(1)<<narrowWtsBits - 1
	narrowDeltaMax  = int64(1)<<narrowDeltaBits - 1
)

// home is the per-line Tardis timestamp table of the home directory
// slices (the lines are interleaved across homes by Core.HomeOf; the
// table itself is stored flat, indexed by global line number).
type home struct {
	packed []uint64 // narrow tier; nil once wide
	wts    []int64  // wide tier
	rts    []int64
	hist   []int8
	wide   bool
}

func newHome(lines int64) *home {
	h := &home{}
	if ForceWideTimestamps {
		h.migrate(lines)
		return h
	}
	h.packed = make([]uint64, lines)
	return h
}

// get returns line l's (wts, rts, hist).
func (h *home) get(l int64) (wts, rts int64, hist int8) {
	if h.wide {
		return h.wts[l], h.rts[l], h.hist[l]
	}
	p := h.packed[l]
	wts = int64(p & uint64(narrowWtsMax))
	rts = wts + int64(p>>narrowWtsBits&uint64(narrowDeltaMax))
	hist = int8(p >> (narrowWtsBits + narrowDeltaBits))
	return wts, rts, hist
}

// set stores line l's (wts, rts, hist), migrating to the wide tier when
// a value no longer fits the packed ranges. wts <= rts is a protocol
// invariant the caller maintains (checked by CheckInvariants).
func (h *home) set(l int64, wts, rts int64, hist int8) {
	if !h.wide && (wts > narrowWtsMax || rts-wts > narrowDeltaMax) {
		h.migrate(int64(len(h.packed)))
	}
	if h.wide {
		h.wts[l], h.rts[l], h.hist[l] = wts, rts, hist
		return
	}
	h.packed[l] = uint64(wts) | uint64(rts-wts)<<narrowWtsBits |
		uint64(uint8(hist))<<(narrowWtsBits+narrowDeltaBits)
}

// migrate unpacks the narrow tier into the wide slices (one-way; a run
// never shrinks back).
func (h *home) migrate(lines int64) {
	h.wts = make([]int64, lines)
	h.rts = make([]int64, lines)
	h.hist = make([]int8, lines)
	for l, p := range h.packed {
		wts := int64(p & uint64(narrowWtsMax))
		h.wts[l] = wts
		h.rts[l] = wts + int64(p>>narrowWtsBits&uint64(narrowDeltaMax))
		h.hist[l] = int8(p >> (narrowWtsBits + narrowDeltaBits))
	}
	h.packed = nil
	h.wide = true
}

// lines returns the table extent.
func (h *home) lines() int64 {
	if h.wide {
		return int64(len(h.wts))
	}
	return int64(len(h.packed))
}
