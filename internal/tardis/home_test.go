package tardis

import "testing"

// TestHomeNarrowRoundTrip checks the packed representation stores and
// returns every boundary value of the three fields exactly.
func TestHomeNarrowRoundTrip(t *testing.T) {
	h := newHome(4)
	if h.wide {
		t.Fatal("new home should start narrow")
	}
	cases := []struct {
		wts, rts int64
		hist     int8
	}{
		{0, 0, 0},
		{1, 1, 0},
		{5, 12, 3},
		{narrowWtsMax, narrowWtsMax, 0},
		{narrowWtsMax, narrowWtsMax + narrowDeltaMax, 0},
		{7, 7 + narrowDeltaMax, maxPredict},
		{42, 99, minHist}, // negative hist must survive the uint8 packing
		{42, 99, -1},
	}
	for i, c := range cases {
		l := int64(i % 4)
		h.set(l, c.wts, c.rts, c.hist)
		if h.wide {
			t.Fatalf("case %d: boundary value forced wide migration", i)
		}
		wts, rts, hist := h.get(l)
		if wts != c.wts || rts != c.rts || hist != c.hist {
			t.Fatalf("case %d: got (%d,%d,%d), want (%d,%d,%d)",
				i, wts, rts, hist, c.wts, c.rts, c.hist)
		}
	}
}

// TestHomeMigration checks both overflow triggers (a write timestamp past
// 2^40, a lease delta past 2^16) migrate to the wide tier exactly once,
// preserving every previously stored line.
func TestHomeMigration(t *testing.T) {
	for _, tc := range []struct {
		name     string
		wts, rts int64
	}{
		{"wts-overflow", narrowWtsMax + 1, narrowWtsMax + 1},
		{"delta-overflow", 3, 3 + narrowDeltaMax + 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newHome(8)
			for l := int64(0); l < 8; l++ {
				h.set(l, l*10, l*10+l, int8(l-4))
			}
			h.set(5, tc.wts, tc.rts, 2)
			if !h.wide {
				t.Fatal("overflow value did not migrate")
			}
			if h.lines() != 8 {
				t.Fatalf("lines() = %d after migration", h.lines())
			}
			for l := int64(0); l < 8; l++ {
				wts, rts, hist := h.get(l)
				if l == 5 {
					if wts != tc.wts || rts != tc.rts || hist != 2 {
						t.Fatalf("line 5: got (%d,%d,%d)", wts, rts, hist)
					}
					continue
				}
				if wts != l*10 || rts != l*10+l || hist != int8(l-4) {
					t.Fatalf("line %d lost in migration: (%d,%d,%d)", l, wts, rts, hist)
				}
			}
		})
	}
}

// TestHomeForceWide checks the testing hook pins new tables to the wide
// tier from construction.
func TestHomeForceWide(t *testing.T) {
	ForceWideTimestamps = true
	defer func() { ForceWideTimestamps = false }()
	h := newHome(3)
	if !h.wide || h.packed != nil {
		t.Fatal("ForceWideTimestamps did not pin the wide tier")
	}
	h.set(2, 7, 9, -3)
	if wts, rts, hist := h.get(2); wts != 7 || rts != 9 || hist != -3 {
		t.Fatalf("wide round-trip: (%d,%d,%d)", wts, rts, hist)
	}
	if h.lines() != 3 {
		t.Fatalf("lines() = %d", h.lines())
	}
}
