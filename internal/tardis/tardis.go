// Package tardis implements timestamp-based coherence after Tardis (Yu &
// Devadas, PACT 2015) and Tardis 2.0 (Yu, Liu & Devadas, 2016) — the
// sixth scheme family next to BASE/SC/TPI/HW/VC. Where the paper's HSCD
// schemes bound staleness with compiler epoch distances and the HW
// directory tracks sharers to invalidate them, Tardis orders memory
// operations in *logical time* and never sends invalidations at all:
//
//	state    per line at home: write timestamp wts, read lease bound rts
//	         per processor: logical clock pts (here: gts + a local bump)
//	read:    lease the word until rts' = max(rts, pts + lease); a cached
//	         copy is readable while its lease has not expired
//	write:   jump past every outstanding lease: wts' = rts + 1 — old
//	         copies simply expire instead of being invalidated
//	renewal: an expired copy whose data is unchanged re-leases with a
//	         timestamp-only message (no data transfer)
//
// The Tardis 2.0 optimizations are config knobs: lease prediction grows
// a line's lease on renewal streaks (LeasePredict), unshared read misses
// take the line exclusive so later stores are silent (TardisExclusive),
// and contended lines back their leases off (RenewBackoff). TARDIS maps
// to the base protocol, TARDIS2 to all three knobs on.
//
// # Mapping onto the epoch-barrier execution model
//
// The simulator's programs are barrier-synchronized DOALL epochs, so the
// protocol is run at epoch grain: one global logical clock gts stands in
// for the per-processor pts between barriers (a processor's pts only
// exceeds gts transiently after its own writes, which is tracked in
// ptsLocal and folded back by the barrier's gts advance). All home
// timestamp state is FROZEN mid-epoch: reads and writes compute their
// grants from the frozen (wts, rts, hist, owner) image and append the
// resulting home mutations to a per-processor action log, replayed in
// (processor, sequence) order inside FlushEpoch after the lane merge —
// the same deferred-replay discipline as the HW directory, which makes
// sequential, host-parallel, and fast-path execution bit-identical by
// construction.
//
// Correctness does not depend on replay order: every lease granted in an
// epoch is registered in rts at that epoch's barrier, every grant
// computes the same end E = max(rts, gts+lease) from the same frozen
// image, and a write's timestamp is exactly E+1 — strictly past every
// same-epoch grant and, via wts' = max(rts+1, E+1) at replay, past every
// earlier lease too. The barrier then advances gts to the maximum
// replayed wts, so a copy whose word was overwritten always fails the
// uniform hit predicate TT[w] >= gts in the next epoch. The staleness
// oracle (lane.CheckFresh) and the property tests in this package check
// exactly this: no read ever returns a value other than the one
// sequential execution would.
package tardis

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
	"repro/internal/stats"
)

// minHist is the lease-history floor: RenewBackoff halves the base lease
// at most this many times (lease >> 4, floored at 1 epoch).
const minHist = -4

// maxPredict caps LeasePredict doubling (lease << 6) independently of
// LeaseMax, so one hot line cannot run its lease away from the clock.
const maxPredict = 6

// actKind is a deferred home-state mutation (see the package comment).
type actKind uint8

const (
	// actGrant registers a read lease: rts = max(rts, end). A grant by a
	// non-owner also revokes the line's exclusive owner (recall).
	actGrant actKind = iota
	// actOwnGrant is actGrant plus an exclusive-ownership claim, taken on
	// a read miss to a line with no outstanding leases (Tardis 2.0 MESI
	// grant). The claim is rechecked against live replay state: if a
	// same-epoch foreign grant got there first, the claim is dropped.
	actOwnGrant
	// actRenewFresh is actGrant for a renewal that found the data
	// unchanged; it feeds the lease predictor's success streak.
	actRenewFresh
	// actRenewStale is actGrant for a renewal that found the data
	// changed; it feeds the renewal backoff.
	actRenewStale
	// actWrite advances the write timestamp past every outstanding
	// lease: wts = max(rts+1, end), rts = wts. end is the writer's
	// precomputed grant (frozen rts, frozen lease) + 1.
	actWrite
)

// act is one logged home mutation.
type act struct {
	kind actKind
	line int64 // global line number (== cache tag)
	end  int64 // grant end / write timestamp
}

// System is the Tardis timestamp-coherence memory system.
type System struct {
	*memsys.Core
	caches   []*cache.Cache
	trackers []*cache.Tracker
	wbufs    []*cache.WriteBuffer

	home  *home   // frozen-mid-epoch per-line (wts, rts, hist)
	owner []int16 // frozen-mid-epoch per-line exclusive owner; nil unless TardisExclusive
	gts   int64   // global logical clock; advances only at FlushEpoch

	// ptsLocal[p] is the transient excess of processor p's logical clock
	// over gts (the timestamp of its latest write grant); the effective
	// pts(p) is max(gts, ptsLocal[p]). Written only by p mid-epoch.
	ptsLocal []int64

	// acts[p] is processor p's home action log for the current epoch,
	// appended mid-epoch by p alone and replayed in (processor, sequence)
	// order at the barrier.
	acts [][]act

	lease    int64 // base lease in epochs (cfg.LeaseEpochs, defaulted)
	leaseMax int64 // hard lease cap (cfg.LeaseMax, defaulted)
	predict  bool  // Tardis 2.0 lease prediction
	excl     bool  // Tardis 2.0 exclusive grant + silent stores
	backoff  bool  // Tardis 2.0 renewal backoff
	maxHist  int8  // largest hist with lease<<hist <= leaseMax
}

// New builds a Tardis system. memWords is the program's data extent.
func New(cfg machine.Config, memWords int64) *System {
	s := &System{Core: memsys.NewCore(cfg, memWords)}
	lines := s.Memory.Size() / int64(cfg.LineWords)
	s.home = newHome(lines)
	s.lease = cfg.LeaseEpochs
	if s.lease <= 0 {
		s.lease = machine.DefaultLeaseEpochs
	}
	s.leaseMax = cfg.LeaseMax
	if s.leaseMax <= 0 {
		s.leaseMax = machine.DefaultLeaseMax
	}
	if s.leaseMax < s.lease {
		s.leaseMax = s.lease
	}
	s.predict = cfg.LeasePredict
	s.excl = cfg.TardisExclusive
	s.backoff = cfg.RenewBackoff
	for s.maxHist < maxPredict && s.lease<<uint(s.maxHist+1) <= s.leaseMax {
		s.maxHist++
	}
	if s.excl {
		s.owner = make([]int16, lines)
		for i := range s.owner {
			s.owner[i] = -1
		}
	}
	s.ptsLocal = make([]int64, cfg.Procs)
	s.acts = make([][]act, cfg.Procs)
	s.caches = make([]*cache.Cache, cfg.Procs)
	s.trackers = make([]*cache.Tracker, cfg.Procs)
	s.wbufs = make([]*cache.WriteBuffer, cfg.Procs)
	s.EnableAlwaysBuffered()
	return s
}

// procState returns p's cache and tracker (building them, and the write
// buffer, on first use; safe under host parallelism — each processor is
// owned by exactly one worker).
func (s *System) procState(p int) (*cache.Cache, *cache.Tracker) {
	if cc := s.caches[p]; cc != nil {
		return cc, s.trackers[p]
	}
	cc := cache.New(s.Cfg.CacheWords, s.Cfg.LineWords, s.Cfg.Assoc)
	s.caches[p] = cc
	s.trackers[p] = cache.NewTracker(s.Memory.Size())
	s.wbufs[p] = cache.NewWriteBuffer(s.Cfg.WriteBufferCache)
	return cc, s.trackers[p]
}

// Name implements memsys.System.
func (s *System) Name() string { return s.Cfg.Scheme.String() }

// HostShardable implements memsys.Sharded: home timestamps and the owner
// table are frozen mid-epoch, every mutation goes to the per-processor
// action log, and every reference is lane-routed.
func (s *System) HostShardable() bool { return true }

// ReleaseCaches implements memsys.Releaser.
func (s *System) ReleaseCaches() {
	for p, cc := range s.caches {
		if cc == nil {
			continue
		}
		cache.Release(cc)
		cache.ReleaseTracker(s.trackers[p])
		cache.ReleaseWriteBuffer(s.wbufs[p])
	}
	s.caches, s.trackers, s.wbufs = nil, nil, nil
	s.ReleaseLanes()
}

// leaseFor is the lease the predictor currently assigns a line: the base
// lease doubled per renewal-success step (LeasePredict) or halved per
// backoff step (RenewBackoff), clamped to [1, leaseMax].
func (s *System) leaseFor(hist int8) int64 {
	l := s.lease
	switch {
	case hist > 0:
		l <<= uint(hist)
		if l > s.leaseMax {
			l = s.leaseMax
		}
	case hist < 0:
		l >>= uint(-hist)
		if l < 1 {
			l = 1
		}
	}
	return l
}

// grantEnd computes a read-lease end from the frozen home image of line
// l: E = max(rts, gts + lease). Every same-epoch grant to l computes the
// same E (same frozen inputs), which is what makes the writer's E+1
// strictly dominate them all.
func (s *System) grantEnd(l int64) int64 {
	_, rts, hist := s.home.get(l)
	end := s.gts + s.leaseFor(hist)
	if rts > end {
		end = rts
	}
	return end
}

// writeEnd is the write timestamp a store to line l claims: one past the
// epoch's uniform grant end.
func (s *System) writeEnd(l int64) int64 { return s.grantEnd(l) + 1 }

// ownerHeld reports whether line l is exclusively owned by a processor
// other than p in the frozen owner table. Such a line may be receiving
// unlogged silent stores this very epoch, so any fill or renewal by p
// must validate only the word p is accessing (see recall handling).
func (s *System) ownerHeld(l int64, p int) bool {
	return s.excl && s.owner[l] >= 0 && s.owner[l] != int16(p)
}

// notePts records that p's logical clock reached t (its write grant).
func (s *System) notePts(p int, t int64) {
	if t > s.ptsLocal[p] {
		s.ptsLocal[p] = t
	}
}

// log appends a home mutation to p's action log.
func (s *System) log(p int, a act) { s.acts[p] = append(s.acts[p], a) }

// Read implements memsys.System. The Time-Read window is ignored —
// Tardis needs no compiler windows; the lease check subsumes them.
func (s *System) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	ln := s.LaneFor(p)
	ln.St.Reads++
	cc, tr := s.procState(p)

	if kind == memsys.ReadBypass {
		v := ln.Value(addr)
		if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
			line.Vals[w] = v
		}
		ln.St.ReadMisses[stats.MissBypass]++
		ln.St.ReadTrafficWords++
		ln.Inject(2)
		lat := s.WordMissLatencyFor(p, addr)
		ln.St.MissLatencySum += lat
		return v, lat
	}

	line, w, present := cc.Lookup(addr)
	if present && line.TT[w] != cache.TTInvalid {
		if line.TT[w] >= s.gts {
			// Unexpired lease: the uniform Tardis hit.
			ln.St.ReadHits++
			line.Used[w] = true
			cc.Touch(line)
			ln.CheckFresh(addr, line.Vals[w], p, "tardis hit")
			return line.Vals[w], s.Cfg.HitCycles
		}
		lid := line.Tag
		end := s.grantEnd(lid)
		if s.ownerHeld(lid, p) {
			// Expired lease on a line another processor owns: recall.
			return s.recallRead(ln, cc, tr, line, w, addr, lid, end, p)
		}
		if s.lineChanged(ln, cc, line, addr) {
			// The data moved on: a necessary coherence re-fetch.
			ln.St.ReadMisses[stats.MissTrueSharing]++
			s.refreshLine(ln, line, w, addr, cc, tr, end)
			s.log(p, act{actRenewStale, lid, end})
			return line.Vals[w], s.chargeLineMiss(ln, p, addr)
		}
		// Data unchanged: pure lease renewal — timestamps move, data
		// does not. This is the Tardis analog of the HSCD conservative
		// miss, in its own class.
		ln.St.ReadMisses[stats.MissLeaseExpired]++
		ln.St.LeaseRenewals++
		s.extendLine(ln, line, w, addr, cc, end, p)
		s.log(p, act{actRenewFresh, lid, end})
		return line.Vals[w], s.chargeRenewal(ln, p, addr)
	}

	ln.St.ReadMisses[s.ClassifyMissLane(ln, tr, addr)]++
	if present {
		// Word-grain hole in a present line.
		lid := line.Tag
		end := s.grantEnd(lid)
		if s.ownerHeld(lid, p) {
			return s.recallWord(ln, cc, tr, line, w, addr, lid, end, p)
		}
		s.refreshLine(ln, line, w, addr, cc, tr, end)
		s.log(p, act{actGrant, lid, end})
		return line.Vals[w], s.chargeLineMiss(ln, p, addr)
	}
	nl, nw := s.fillLine(ln, cc, tr, p, addr)
	return nl.Vals[nw], s.chargeLineMiss(ln, p, addr)
}

// lineChanged reports whether any valid word of the (expired) line
// differs from what this processor must currently see — the home's
// renewal check, decided against lane-visible values so sequential and
// host-parallel runs agree.
func (s *System) lineChanged(ln *memsys.Lane, cc *cache.Cache, line *cache.Line, addr prog.Word) bool {
	base := cc.LineBase(addr)
	for i := 0; i < cc.LineWords(); i++ {
		if line.TT[i] != cache.TTInvalid && line.Vals[i] != ln.Value(base+prog.Word(i)) {
			return true
		}
	}
	return false
}

// extendLine renews the line's valid words in place: no data moves, the
// lease timetags advance to end (never backwards — a word written this
// epoch already carries the strictly larger write timestamp).
func (s *System) extendLine(ln *memsys.Lane, line *cache.Line, w int, addr prog.Word, cc *cache.Cache, end int64, p int) {
	for i := range line.TT {
		if line.TT[i] != cache.TTInvalid && line.TT[i] < end {
			line.TT[i] = end
		}
	}
	line.Used[w] = true
	cc.Touch(line)
	ln.CheckFresh(addr, line.Vals[w], p, "tardis renewal")
}

// refreshLine re-fetches a present line through the lane; every word's
// lease becomes at least end.
func (s *System) refreshLine(ln *memsys.Lane, line *cache.Line, w int, addr prog.Word, cc *cache.Cache, tr *cache.Tracker, end int64) {
	base := cc.LineBase(addr)
	for i := 0; i < cc.LineWords(); i++ {
		a := base + prog.Word(i)
		line.Vals[i] = ln.Value(a)
		if line.TT[i] < end {
			line.TT[i] = end
		}
		tr.NoteCached(a)
	}
	line.State = cache.Shared
	line.Dirty = false
	line.Used[w] = true
	cc.Touch(line)
}

// recallRead handles an expired word of a line exclusively owned by
// another processor: the home recalls the owner (revoking it at replay
// via the grant) and can vouch only for the requested word — the owner
// may be silently storing to the line's other words this very epoch, so
// their leases are curtailed rather than renewed (see staleMark).
func (s *System) recallRead(ln *memsys.Lane, cc *cache.Cache, tr *cache.Tracker, line *cache.Line, w int, addr prog.Word, lid, end int64, p int) (float64, int64) {
	changed := line.Vals[w] != ln.Value(addr)
	if changed {
		ln.St.ReadMisses[stats.MissTrueSharing]++
	} else {
		ln.St.ReadMisses[stats.MissLeaseExpired]++
		ln.St.LeaseRenewals++
	}
	s.staleMark(line, w)
	line.Vals[w] = ln.Value(addr)
	if line.TT[w] < end {
		line.TT[w] = end
	}
	line.State = cache.Shared
	line.Used[w] = true
	cc.Touch(line)
	tr.NoteCached(addr)
	if changed {
		s.log(p, act{actRenewStale, lid, end})
	} else {
		s.log(p, act{actRenewFresh, lid, end})
	}
	return line.Vals[w], s.chargeRecall(ln, p, addr)
}

// recallWord fills a word-grain hole of an owner-held present line —
// like recallRead but the requested word has no prior copy to compare.
func (s *System) recallWord(ln *memsys.Lane, cc *cache.Cache, tr *cache.Tracker, line *cache.Line, w int, addr prog.Word, lid, end int64, p int) (float64, int64) {
	s.staleMark(line, w)
	line.Vals[w] = ln.Value(addr)
	if line.TT[w] < end {
		line.TT[w] = end
	}
	line.State = cache.Shared
	line.Used[w] = true
	cc.Touch(line)
	tr.NoteCached(addr)
	s.log(p, act{actGrant, lid, end})
	return line.Vals[w], s.chargeRecall(ln, p, addr)
}

// staleMark caps the lease of every valid word of the line except w at
// gts-1 — present but expired. An owner-held line's other words may be
// mid-silent-store, so their leases cannot be extended; an expired copy
// is harmless (the hit predicate rejects it) and the next access decides
// renewal vs re-fetch by comparing values, which by then include the
// owner's flushed stores.
func (s *System) staleMark(line *cache.Line, w int) {
	cut := s.gts - 1
	for i := range line.TT {
		if i != w && line.TT[i] > cut {
			line.TT[i] = cut
		}
	}
}

// fillLine installs the line with lease end per word; an unshared line
// (no outstanding leases, no foreign owner) is granted Exclusive under
// TardisExclusive. A dirty victim (silent stores) writes back first.
func (s *System) fillLine(ln *memsys.Lane, cc *cache.Cache, tr *cache.Tracker, p int, addr prog.Word) (*cache.Line, int) {
	if v := cc.Victim(addr); v.State != cache.Invalid && v.Dirty {
		s.chargeWriteback(ln, cc)
		v.Dirty = false
	}
	lid := int64(addr) / int64(s.Cfg.LineWords)
	wts, rts, _ := s.home.get(lid)
	end := s.grantEnd(lid)
	nl, nw := s.FillLane(ln, cc, tr, addr, end, end)
	if s.ownerHeld(lid, p) {
		// Owner-held line: recall it (one coherence message on top of
		// the fetch); only the accessed word's lease can be granted.
		s.staleMark(nl, nw)
		ln.St.CoherenceMsgs++
		s.log(p, act{actGrant, lid, end})
		return nl, nw
	}
	if s.excl && rts <= wts && (s.owner[lid] < 0 || s.owner[lid] == int16(p)) {
		nl.State = cache.Exclusive
		ln.St.ExclusiveGrants++
		s.log(p, act{actOwnGrant, lid, end})
	} else {
		s.log(p, act{actGrant, lid, end})
	}
	return nl, nw
}

// chargeWriteback accounts a dirty (silently-stored) victim line's
// write-back to its home. Values are already authoritative in memory via
// the lanes; only traffic is charged.
func (s *System) chargeWriteback(ln *memsys.Lane, cc *cache.Cache) {
	ln.St.CoherenceTrafficWords += int64(cc.LineWords())
	ln.Inject(int64(cc.LineWords()) + 1)
}

// chargeLineMiss is the full line fetch: request out, line back.
func (s *System) chargeLineMiss(ln *memsys.Lane, p int, addr prog.Word) int64 {
	ln.St.ReadTrafficWords += int64(s.Cfg.LineWords)
	ln.Inject(int64(s.Cfg.LineWords) + 1)
	lat := s.LineMissLatencyFor(p, addr)
	ln.St.MissLatencySum += lat
	return lat
}

// chargeRenewal is the data-free lease renewal: a timestamp round trip
// (coherence traffic, not data traffic) at single-word latency.
func (s *System) chargeRenewal(ln *memsys.Lane, p int, addr prog.Word) int64 {
	ln.St.CoherenceMsgs++
	ln.St.CoherenceTrafficWords += 2
	ln.Inject(2)
	lat := s.WordMissLatencyFor(p, addr)
	ln.St.MissLatencySum += lat
	return lat
}

// chargeRecall is the owner-recall word fetch: one data word plus the
// recall message, at single-word latency.
func (s *System) chargeRecall(ln *memsys.Lane, p int, addr prog.Word) int64 {
	ln.St.ReadTrafficWords++
	ln.St.CoherenceMsgs++
	ln.Inject(3)
	lat := s.WordMissLatencyFor(p, addr)
	ln.St.MissLatencySum += lat
	return lat
}

// Write implements memsys.System: write-through with write-validate,
// like the HSCD schemes, except that the written word's timetag is the
// write timestamp E+1 (past every outstanding lease) and — under
// TardisExclusive — a store to a line this processor still owns in the
// frozen home table is silent: no home message, no lease change, dirty
// data written back on eviction.
func (s *System) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	ln := s.LaneFor(p)
	ln.St.Writes++
	cc, tr := s.procState(p)
	if crit {
		// Critical-section store: globally visible now, local copy
		// dropped, and — unlike VC, whose CVNs advance via epoch mod
		// sets — the home must still jump wts past outstanding leases,
		// or same-line copies elsewhere would outlive the store.
		ln.WriteThrough(addr, val, p, s.Epoch)
		ln.St.WriteMisses[stats.MissBypass]++
		if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
			tr.NoteLost(addr, cache.LostInvalTrue, line.TT[w])
			line.InvalidateWord(w)
		}
		lid := int64(addr) / int64(s.Cfg.LineWords)
		wend := s.writeEnd(lid)
		s.log(p, act{actWrite, lid, wend})
		s.notePts(p, wend)
		ln.St.WriteTrafficWords++
		ln.Inject(1)
		return 0
	}
	ln.Write(addr, val, p, s.Epoch)
	line, w, ok := cc.Lookup(addr)

	// Tardis 2.0 silent store: the frozen home owner table still names
	// this processor, so no lease can be granted to anyone else this
	// epoch and the store needs no home interaction at all. Mirrored
	// exactly by the StreamTardis write cursor.
	if ok && line.TT[w] != cache.TTInvalid && s.excl &&
		line.State == cache.Exclusive && s.owner[line.Tag] == int16(p) {
		ln.St.WriteHits++
		line.Vals[w] = val
		line.Used[w] = true
		line.Dirty = true
		cc.Touch(line)
		return 0
	}

	lid := int64(addr) / int64(s.Cfg.LineWords)
	wend := s.writeEnd(lid)
	hit := ok && line.TT[w] != cache.TTInvalid
	if hit {
		ln.St.WriteHits++
	} else {
		// Classify before the tracker below records the new residency.
		ln.St.WriteMisses[s.ClassifyMissLane(ln, tr, addr)]++
	}
	if ok {
		if line.State == cache.Exclusive && !(s.excl && s.owner[line.Tag] == int16(p)) {
			// Stale exclusivity hint (the home revoked us): demote.
			line.State = cache.Shared
		}
		line.Vals[w] = val
		line.TT[w] = wend
		line.Used[w] = true
		cc.Touch(line)
		tr.NoteCached(addr)
	} else {
		v := cc.Victim(addr)
		if v.State != cache.Invalid {
			if v.Dirty {
				s.chargeWriteback(ln, cc)
			}
			base := prog.Word(v.Tag * int64(cc.LineWords()))
			for i := 0; i < cc.LineWords(); i++ {
				if v.TT[i] != cache.TTInvalid {
					tr.NoteLost(base+prog.Word(i), cache.LostReplaced, v.TT[i])
				}
			}
			v.InvalidateLine()
		}
		tag, w := cc.Split(addr)
		v.Tag = tag
		v.State = cache.Shared
		v.Vals[w] = val
		v.TT[w] = wend
		v.Used[w] = true
		cc.Touch(v)
		tr.NoteCached(addr)
	}
	s.log(p, act{actWrite, lid, wend})
	s.notePts(p, wend)
	if s.wbufs[p].Write(addr) {
		ln.St.WriteTrafficWords++
		ln.Inject(1)
	} else {
		ln.St.WritesCoalesced++
	}
	if s.Cfg.SeqConsistency {
		lat := s.WordMissLatencyFor(p, addr)
		if !hit {
			ln.St.WriteMissLatencySum += lat
		}
		return lat
	}
	return 0
}

// EpochBoundary implements memsys.System. The simulator's FlushEpoch has
// already merged the previous epoch's lanes and replayed the action logs
// when this runs.
func (s *System) EpochBoundary(epoch int64) int64 {
	s.Epoch = epoch
	s.SetLaneEpoch(epoch)
	for _, wb := range s.wbufs {
		if wb != nil {
			wb.Flush()
		}
	}
	return 0
}

// FlushEpoch implements memsys.Buffered: lane merge first (memory then
// reads barrier-final values), then the deterministic home replay.
func (s *System) FlushEpoch() {
	s.FlushEpochLanes()
	s.replay()
}

// replay applies the epoch's home mutations in (processor, sequence)
// order and advances gts to the maximum replayed write timestamp — the
// logical barrier synchronization. Per-processor clock excesses are
// subsumed (every ptsLocal value was logged as a write), so no O(P)
// clock scan is needed.
func (s *System) replay() {
	maxW := s.gts
	for p := range s.acts {
		l := s.acts[p]
		if len(l) == 0 {
			continue
		}
		for _, a := range l {
			wts, rts, hist := s.home.get(a.line)
			switch a.kind {
			case actGrant, actRenewFresh, actRenewStale:
				if s.excl && s.owner[a.line] >= 0 && s.owner[a.line] != int16(p) {
					s.owner[a.line] = -1 // recall: a foreign lease revokes exclusivity
				}
				if a.end > rts {
					rts = a.end
				}
				switch a.kind {
				case actRenewFresh:
					if s.predict && hist < s.maxHist {
						hist++
					} else if hist < 0 {
						hist++ // recover from backoff
					}
				case actRenewStale:
					if s.backoff {
						if hist > 0 {
							hist = 0
						}
						if hist > minHist {
							hist--
						}
					} else if hist != 0 {
						hist = 0
					}
				}
			case actOwnGrant:
				// Recheck the unshared condition against live replay
				// state: a same-epoch foreign grant kills the claim.
				claim := rts <= wts && (s.owner[a.line] < 0 || s.owner[a.line] == int16(p))
				if a.end > rts {
					rts = a.end
				}
				if claim {
					s.owner[a.line] = int16(p)
				} else if s.owner[a.line] >= 0 && s.owner[a.line] != int16(p) {
					s.owner[a.line] = -1
				}
			case actWrite:
				w2 := rts + 1
				if a.end > w2 {
					w2 = a.end
				}
				wts = w2
				rts = w2
				if s.excl && s.owner[a.line] >= 0 && s.owner[a.line] != int16(p) {
					// A foreign write breaks exclusivity; ownership is
					// only ever claimed by the exclusive read grant.
					s.owner[a.line] = -1
				}
				if hist > 0 {
					hist = 0 // a write ends a renewal-success streak
				}
				if w2 > maxW {
					maxW = w2
				}
			}
			s.home.set(a.line, wts, rts, hist)
		}
		s.acts[p] = l[:0]
	}
	s.gts = maxW
}

// StreamCapable implements memsys.Streamer.
func (s *System) StreamCapable() bool { return true }

// InitReadCursor implements memsys.Streamer: the hit predicate is the
// uniform lease check TT[w] >= gts, with gts frozen mid-epoch — a
// StreamCached cursor with Cut = gts. Time-Reads take the same path.
func (s *System) InitReadCursor(c *memsys.ReadCursor, p int, kind memsys.ReadKind, window int, addr0 prog.Word) {
	ln := s.LaneFor(p)
	if kind == memsys.ReadBypass {
		*c = memsys.ReadCursor{
			Mode: memsys.StreamUncached,
			Sys:  s, Core: s.Core, Ln: ln, Proc: p,
			Kind: kind, Window: window,
		}
		return
	}
	cc, _ := s.procState(p)
	*c = memsys.ReadCursor{
		Mode: memsys.StreamCached,
		Sys:  s, Core: s.Core, Ln: ln,
		CC: cc, Proc: p,
		Kind: kind, Window: window,
		Cut:       s.gts,
		PromoteTT: false,
		Epoch:     s.Epoch,
		HitCycles: s.Cfg.HitCycles,
		HitCtx:    "tardis hit",
		Fresh:     ln.FreshWords(),
	}
}

// InitWriteCursor implements memsys.Streamer. Write timestamps depend on
// per-line frozen home state, so there is no stream-constant WTT: under
// TardisExclusive the cursor inlines the silent store against the frozen
// owner table and delegates the rest to the scalar Write; otherwise
// every store delegates.
func (s *System) InitWriteCursor(c *memsys.WriteCursor, p int, addr0 prog.Word) {
	cc, _ := s.procState(p)
	if s.excl {
		*c = memsys.WriteCursor{
			Mode: memsys.StreamTardis,
			Sys:  s, Core: s.Core, Ln: s.LaneFor(p),
			CC: cc, Proc: p, Epoch: s.Epoch,
			Owners: s.owner,
		}
		return
	}
	*c = memsys.WriteCursor{
		Mode: memsys.StreamUncached,
		Sys:  s, Core: s.Core, Ln: s.LaneFor(p),
		Proc: p, Epoch: s.Epoch,
	}
}

// GTS exposes the global logical clock (tests).
func (s *System) GTS() int64 { return s.gts }

// PTS exposes processor p's effective logical clock max(gts, local bump)
// (tests; the proof-paper invariant pts <= rts at every access).
func (s *System) PTS(p int) int64 {
	if s.ptsLocal[p] > s.gts {
		return s.ptsLocal[p]
	}
	return s.gts
}

// LineTimestamps exposes line l's home (wts, rts) image (tests).
func (s *System) LineTimestamps(l int64) (wts, rts int64) {
	wts, rts, _ = s.home.get(l)
	return wts, rts
}

// OwnerOf exposes line l's exclusive owner, -1 if none (tests).
func (s *System) OwnerOf(l int64) int {
	if s.owner == nil {
		return -1
	}
	return int(s.owner[l])
}

// Lines exposes the home table extent (tests).
func (s *System) Lines() int64 { return s.home.lines() }

// WideTimestamps reports whether the home table migrated to (or was
// forced into) the wide representation (tests).
func (s *System) WideTimestamps() bool { return s.home.wide }

// CheckInvariants verifies the proof-paper home invariants at a barrier:
// wts <= rts on every line, and no processor clock ahead of the merged
// global clock (every local bump was a logged write the barrier's gts
// advance subsumed). The simulator checks it after the final barrier;
// the property tests check it at every barrier.
func (s *System) CheckInvariants() error {
	for l := int64(0); l < s.home.lines(); l++ {
		wts, rts, _ := s.home.get(l)
		if wts > rts {
			return fmt.Errorf("tardis: line %d: wts %d > rts %d", l, wts, rts)
		}
		if wts > s.gts {
			return fmt.Errorf("tardis: line %d: wts %d ahead of gts %d", l, wts, s.gts)
		}
	}
	for p, pl := range s.ptsLocal {
		if pl > s.gts {
			return fmt.Errorf("tardis: P%d: pts %d ahead of gts %d at barrier", p, pl, s.gts)
		}
	}
	return nil
}
