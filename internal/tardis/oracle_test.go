package tardis_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
)

// TestKernelsMatchOracle runs every benchmark kernel under both Tardis
// variants across processor counts and execution modes (sequential,
// host-parallel, fast-path off) and requires the final memory image to
// match the sequential oracle bit for bit. core.VerifyAgainstOracle also
// runs CheckInvariants after the final barrier, so together with the
// in-package property tests this puts the proof invariants under -race
// across kernels x procs (the external test package breaks the import
// cycle with internal/core).
func TestKernelsMatchOracle(t *testing.T) {
	params := bench.DefaultParams()
	for _, scheme := range []machine.Scheme{machine.SchemeTardis, machine.SchemeTardis2} {
		for _, procs := range []int{8, 32} {
			scheme, procs := scheme, procs
			t.Run(fmt.Sprintf("%s/p%d", scheme, procs), func(t *testing.T) {
				t.Parallel()
				for _, name := range bench.Names {
					k, err := bench.Get(name, params)
					if err != nil {
						t.Fatal(err)
					}
					cfg := machine.Default(scheme)
					cfg.Procs = procs
					c, err := core.CompileForConfig(k.Source, cfg)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					for _, mode := range []struct {
						name   string
						mutate func(*machine.Config)
					}{
						{"seq", func(*machine.Config) {}},
						{"hostpar", func(c *machine.Config) { c.HostParallel = 4 }},
						{"nofastpath", func(c *machine.Config) { c.FastPath = false }},
					} {
						mcfg := cfg
						mode.mutate(&mcfg)
						if _, err := core.VerifyAgainstOracle(c, mcfg); err != nil {
							t.Errorf("%s/%s: %v", name, mode.name, err)
						}
					}
				}
			})
		}
	}
}
