#!/usr/bin/env bash
# Sweep-fabric smoke: exercises cmd/tpisweep against a two-worker
# tpiserved fleet the way CI runs it. Asserts, in order:
#
#   1. Fleet experiment output is byte-identical to sequential
#      cmd/experiments at the same size (-quick -exp E3 -json).
#   2. Resubmitting a just-swept grid to the peer-wired fleet is served
#      from the shared content-addressed cache at a >= 90% rate.
#   3. A fresh grid sweep completes exactly-once even when one worker
#      is killed mid-sweep (jobs rebalance onto the survivor).
#   4. A fleet wired only by -advertise/-join self-registration (no
#      coordinator peer wiring) registers mutually and shares its
#      result caches across workers.
#
# Usage: scripts/sweep_smoke.sh [bindir]   (defaults to a temp dir)
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="${1:-$(mktemp -d)}"
PORT1=18271
PORT2=18272
W1="http://127.0.0.1:$PORT1"
W2="http://127.0.0.1:$PORT2"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN/" ./cmd/tpiserved ./cmd/tpisweep ./cmd/experiments

"$BIN/tpiserved" -addr "127.0.0.1:$PORT1" -workers 2 >"$BIN/w1.log" 2>&1 &
PIDS+=($!)
"$BIN/tpiserved" -addr "127.0.0.1:$PORT2" -workers 2 >"$BIN/w2.log" 2>&1 &
W2_PID=$!
PIDS+=($W2_PID)

echo "== 1. fleet experiment output is byte-identical to sequential =="
"$BIN/experiments" -quick -exp E3 -json -out "$BIN/seq.json" >/dev/null
"$BIN/tpisweep" -workers "$W1,$W2" -quick -exp E3 -json -out "$BIN/fleet.json" >/dev/null
cmp "$BIN/seq.json" "$BIN/fleet.json"
echo "   ok: $(wc -c <"$BIN/seq.json") bytes identical"

GRID=(-kernels ocean,trfd,flo52,qcd2 -schemes BASE,TPI,HW -n 32,48 -steps 3)
JOBS=24

echo "== 2. warm resubmission to the peer-wired fleet is >= 90% cached =="
"$BIN/tpisweep" -workers "$W1,$W2" "${GRID[@]}" -no-results >/dev/null
"$BIN/tpisweep" -workers "$W1,$W2" "${GRID[@]}" \
  -no-results -min-cached-rate 0.9 >/dev/null 2>"$BIN/warm.log"
cat "$BIN/warm.log"
echo "   ok"

# A fresh grid (different step count) so the kill test runs cold and
# is still in flight 300ms in.
KGRID=(-kernels ocean,trfd,flo52,qcd2 -schemes BASE,TPI,HW -n 32,48 -steps 4)

echo "== 3. kill one worker mid-sweep; jobs rebalance, sweep completes =="
( sleep 0.3; kill -9 "$W2_PID" 2>/dev/null || true; echo "   (killed worker 2)" ) &
KILLER=$!
"$BIN/tpisweep" -workers "$W1,$W2" "${KGRID[@]}" \
  -no-results -max-attempts 6 -death-threshold 2 \
  >"$BIN/rows.ndjson" 2>"$BIN/sweep.log"
wait "$KILLER"
cat "$BIN/sweep.log"
ROWS=$(wc -l <"$BIN/rows.ndjson")
if [ "$ROWS" -ne "$JOBS" ]; then
  echo "expected $JOBS result rows, got $ROWS" >&2
  exit 1
fi
echo "   ok: $ROWS/$JOBS rows, exactly once"

echo "== 4. self-joined fleet registers mutually and shares its caches =="
PORT3=18273
PORT4=18274
W3="http://127.0.0.1:$PORT3"
W4="http://127.0.0.1:$PORT4"
"$BIN/tpiserved" -addr "127.0.0.1:$PORT3" -workers 2 \
  -advertise "$W3" >"$BIN/w3.log" 2>&1 &
PIDS+=($!)
"$BIN/tpiserved" -addr "127.0.0.1:$PORT4" -workers 2 \
  -advertise "$W4" -join "$W3" -reannounce 2s >"$BIN/w4.log" 2>&1 &
PIDS+=($!)

# Wait for the announcer round: W3 must learn W4 (the PUT) and W4 must
# adopt W3 (the merge) with no coordinator involved.
for i in $(seq 1 100); do
  if curl -fsS "$W3/v1/peers" 2>/dev/null | grep -q "$W4" &&
     curl -fsS "$W4/v1/peers" 2>/dev/null | grep -q "$W3"; then
    break
  fi
  if [ "$i" -eq 100 ]; then
    echo "self-registration never converged" >&2
    curl -fsS "$W3/v1/peers" >&2 || true
    curl -fsS "$W4/v1/peers" >&2 || true
    exit 1
  fi
  sleep 0.1
done
echo "   mutual registration up"

# Seed W3's cache alone, then resubmit the same grid to W4 alone with
# coordinator peer wiring off: every hit must ride the self-registered
# peer link back to W3's cache.
SGRID=(-kernels ocean,trfd -schemes TPI,TARDIS2 -n 32 -steps 3)
"$BIN/tpisweep" -workers "$W3" -wire-peers=false "${SGRID[@]}" -no-results >/dev/null
"$BIN/tpisweep" -workers "$W4" -wire-peers=false "${SGRID[@]}" \
  -no-results -min-cached-rate 0.9 >/dev/null 2>"$BIN/selfjoin.log"
cat "$BIN/selfjoin.log"
echo "   ok"

echo "sweep smoke passed"
